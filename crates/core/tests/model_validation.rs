//! Model-versus-measurement validation: the closed-form Section 5.4 model
//! must reproduce the P-store runtime's measured (performance, energy)
//! points — homogeneous scale-downs and heterogeneous designs — within 15%,
//! and the Section 6 advisor's pick over the modeled series must match the
//! pick over the measured series.

use eedc_core::model::{AnalyticalModel, SweepJoin};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::catalog::{cluster_v_node, laptop_b};
use eedc_simkit::metrics::{Measurement, NormalizedSeries};
use eedc_tpch::ScaleFactor;

/// Acceptance tolerance on normalized (performance, energy) coordinates.
const TOLERANCE: f64 = 0.15;

/// Engine scale for the validation runs. The model assumes the per-node data
/// shares are uniform; at very small engine scales only a handful of
/// qualifying rows land on each of 16 ports and the runtime's realized port
/// volumes are dominated by sampling noise (30%+ over the uniform share), so
/// validation materialises enough rows for the law of large numbers to hold.
fn validation_options() -> RunOptions {
    RunOptions {
        engine_scale: ScaleFactor(0.05),
        ..RunOptions::default()
    }
}

fn assert_close(what: &str, modeled: f64, measured: f64) {
    let err = (modeled - measured).abs() / measured;
    assert!(
        err <= TOLERANCE,
        "{what}: modeled {modeled:.4} vs measured {measured:.4} ({:.1}% off)",
        err * 100.0
    );
}

/// Run one design through the runtime and the model side by side.
fn measured_and_modeled(
    spec: ClusterSpec,
    options: RunOptions,
    query: &JoinQuerySpec,
    strategy: JoinStrategy,
) -> (String, Measurement, Measurement) {
    let cluster = PStoreCluster::load(spec.clone(), options).expect("cluster loads");
    let execution = cluster.run(query, strategy).expect("query runs");
    let workload = SweepJoin::matching_cluster(&cluster, query).expect("workload derives");
    let model = AnalyticalModel::new(workload).expect("workload is valid");
    let prediction = model.predict(&spec, strategy).expect("model predicts");
    assert_eq!(
        prediction.mode,
        execution.mode,
        "{}: model and runtime disagree on the execution mode",
        spec.label()
    );
    (
        execution.cluster_label.clone(),
        execution.measurement(),
        prediction.measurement(),
    )
}

#[test]
fn homogeneous_scale_down_matches_within_tolerance() {
    // The Figure 1(a)-shaped experiment: shrink an all-Beefy Cluster-V
    // cluster from 16 to 4 nodes under the Q3 dual-shuffle join and compare
    // every normalized point.
    let query = JoinQuerySpec::q3_dual_shuffle();
    let sizes = [16usize, 12, 10, 8, 6, 4];

    let mut measured = Vec::new();
    let mut modeled = Vec::new();
    for &n in &sizes {
        let spec = ClusterSpec::homogeneous(cluster_v_node(), n).unwrap();
        let (label, m, p) = measured_and_modeled(
            spec,
            validation_options(),
            &query,
            JoinStrategy::DualShuffle,
        );
        // Raw agreement first: the model predicts the runtime's absolute
        // response time and energy, not just the ratios.
        assert_close(
            &format!("{label} response time"),
            p.response_time.value(),
            m.response_time.value(),
        );
        assert_close(
            &format!("{label} energy"),
            p.energy.value(),
            m.energy.value(),
        );
        measured.push((label.clone(), m));
        modeled.push((label, p));
    }

    let measured_series = NormalizedSeries::from_measurements(
        measured[0].0.clone(),
        measured[0].1,
        measured[1..].iter().cloned(),
    )
    .unwrap();
    let modeled_series = NormalizedSeries::from_measurements(
        modeled[0].0.clone(),
        modeled[0].1,
        modeled[1..].iter().cloned(),
    )
    .unwrap();

    for ((label, m), (_, p)) in measured_series.points().iter().zip(modeled_series.points()) {
        assert_close(
            &format!("{label} normalized performance"),
            p.performance,
            m.performance,
        );
        assert_close(&format!("{label} normalized energy"), p.energy, m.energy);
    }

    // The Section 6 selection rule must pick the same design over the
    // modeled series as over the measured series.
    for target in [0.9, 0.75, 0.5] {
        let measured_pick = measured_series.best_meeting_target(target).map(|(l, _)| l);
        let modeled_pick = modeled_series.best_meeting_target(target).map(|(l, _)| l);
        assert_eq!(
            modeled_pick, measured_pick,
            "advisor pick diverges at target {target}"
        );
    }
}

#[test]
fn heterogeneous_design_matches_within_tolerance() {
    // A memory-tight 2 Beefy + 2 Wimpy design at SF-1000 goes heterogeneous
    // under broadcast (the Wimpy laptops cannot hold the ~30 GB hash table);
    // normalize it against the all-Beefy 4-node design and compare model to
    // measurement.
    let options = RunOptions {
        nominal_scale: ScaleFactor::SF1000,
        ..validation_options()
    };
    let query = JoinQuerySpec::new(0.5, 0.05);

    let (_, reference_measured, reference_modeled) = measured_and_modeled(
        ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap(),
        options,
        &query,
        JoinStrategy::Broadcast,
    );
    let (label, mixed_measured, mixed_modeled) = measured_and_modeled(
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 2).unwrap(),
        options,
        &query,
        JoinStrategy::Broadcast,
    );
    assert_eq!(label, "2B,2W");

    let measured_point = mixed_measured
        .normalized_against(&reference_measured)
        .unwrap();
    let modeled_point = mixed_modeled
        .normalized_against(&reference_modeled)
        .unwrap();
    assert_close(
        "2B,2W normalized performance",
        modeled_point.performance,
        measured_point.performance,
    );
    assert_close(
        "2B,2W normalized energy",
        modeled_point.energy,
        measured_point.energy,
    );
}
