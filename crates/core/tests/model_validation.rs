//! Estimator-agreement validation through the experiment API: the measured
//! P-store lens and the closed-form analytical lens must produce
//! `RunRecord`s that agree within 15% — raw response time/energy,
//! normalized (performance, energy) coordinates, homogeneous scale-downs
//! and heterogeneous designs — and the Section 6 advisor must pick the same
//! design from either series.

use eedc_core::{Analytical, Estimator, Experiment, Measured, RunSeries, SweepJoin};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::catalog::{cluster_v_node, laptop_b};
use eedc_tpch::ScaleFactor;

/// Acceptance tolerance on raw and normalized coordinates.
const TOLERANCE: f64 = 0.15;

/// Engine scale for the validation runs. The model assumes the per-node data
/// shares are uniform; at very small engine scales only a handful of
/// qualifying rows land on each of 16 ports and the runtime's realized port
/// volumes are dominated by sampling noise (30%+ over the uniform share), so
/// validation materialises enough rows for the law of large numbers to hold.
fn validation_options() -> RunOptions {
    RunOptions {
        engine_scale: ScaleFactor(0.05),
        ..RunOptions::default()
    }
}

fn assert_close(what: &str, modeled: f64, measured: f64) {
    let err = (modeled - measured).abs() / measured;
    assert!(
        err <= TOLERANCE,
        "{what}: modeled {modeled:.4} vs measured {measured:.4} ({:.1}% off)",
        err * 100.0
    );
}

/// The workload whose analytical volumes match what a loaded cluster
/// actually moves: nominal-scale working sets of the generated tables and
/// the *realized* (quantized) predicate selectivities.
fn matching_workload(options: RunOptions, query: &JoinQuerySpec) -> SweepJoin {
    let spec = ClusterSpec::homogeneous(cluster_v_node(), 4).expect("spec is valid");
    let cluster = PStoreCluster::load(spec, options).expect("cluster loads");
    SweepJoin::matching_cluster(&cluster, query).expect("workload derives")
}

/// Assert raw and normalized agreement between a measured and an analytical
/// series over the same designs.
fn assert_series_agree(measured: &RunSeries, analytical: &RunSeries) {
    assert_eq!(measured.records.len(), analytical.records.len());
    assert!(measured.infeasible.is_empty());
    assert!(analytical.infeasible.is_empty());
    for (m, a) in measured.records.iter().zip(&analytical.records) {
        assert_eq!(m.design, a.design);
        assert_eq!(
            m.mode, a.mode,
            "{}: lenses disagree on the execution mode",
            m.design
        );
        // Raw agreement first: the model predicts the runtime's absolute
        // response time and energy, not just the ratios.
        assert_close(
            &format!("{} response time", m.design),
            a.response_time.value(),
            m.response_time.value(),
        );
        assert_close(
            &format!("{} energy", m.design),
            a.energy.value(),
            m.energy.value(),
        );
        // Normalized agreement: the coordinates the figures actually plot.
        let (mp, ap) = (m.normalized.unwrap(), a.normalized.unwrap());
        assert_close(
            &format!("{} normalized performance", m.design),
            ap.performance,
            mp.performance,
        );
        assert_close(
            &format!("{} normalized energy", m.design),
            ap.energy,
            mp.energy,
        );
    }
}

#[test]
fn homogeneous_scale_down_agrees_across_estimators() {
    // The Figure 1(a)-shaped experiment: shrink an all-Beefy Cluster-V
    // cluster from 16 to 4 nodes and compare every point across the two
    // lenses — one Experiment invocation, both estimators.
    let options = validation_options();
    let query = JoinQuerySpec::q3_dual_shuffle();
    let workload = matching_workload(options, &query);

    let report = Experiment::new(&workload)
        // The measured lens re-executes the *requested* selectivities; the
        // workload's sweep already carries the realized ones.
        .query(query)
        .designs(
            [16usize, 12, 10, 8, 6, 4]
                .map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).expect("spec is valid")),
        )
        .estimator(Measured::new(options))
        .estimator(Analytical)
        .run()
        .expect("experiment runs");

    assert_eq!(report.series.len(), 2);
    let measured = &report.series[0];
    let analytical = &report.series[1];
    assert_eq!(measured.estimator, "measured");
    assert_eq!(analytical.estimator, "analytical");
    assert_series_agree(measured, analytical);

    // The Section 6 selection rule must pick the same design over the
    // modeled series as over the measured series.
    for target in [0.9, 0.75, 0.5] {
        let measured_pick = measured
            .normalized
            .best_meeting_target(target)
            .map(|(l, _)| l);
        let modeled_pick = analytical
            .normalized
            .best_meeting_target(target)
            .map(|(l, _)| l);
        assert_eq!(
            modeled_pick, measured_pick,
            "advisor pick diverges at target {target}"
        );
    }
}

#[test]
fn heterogeneous_design_agrees_across_estimators() {
    // A memory-tight 2 Beefy + 2 Wimpy design at SF-1000 goes heterogeneous
    // under broadcast (the Wimpy laptops cannot hold the ~30 GB hash table);
    // normalize it against the all-Beefy 4-node design and compare lenses.
    let options = RunOptions {
        nominal_scale: ScaleFactor::SF1000,
        ..validation_options()
    };
    let query = JoinQuerySpec::new(0.5, 0.05);
    let workload = matching_workload(options, &query);

    let report = Experiment::new(&workload)
        .query(query)
        .strategy(JoinStrategy::Broadcast)
        .design(ClusterSpec::homogeneous(cluster_v_node(), 4).expect("spec is valid"))
        .design(
            ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 2).expect("spec is valid"),
        )
        .estimator(Measured::new(options))
        .estimator(Analytical)
        .run()
        .expect("experiment runs");

    let measured = &report.series[0];
    let analytical = &report.series[1];
    let mixed = measured.record("2B,2W").expect("mixed design is feasible");
    assert_eq!(mixed.mode, eedc_pstore::ExecutionMode::Heterogeneous);
    assert_series_agree(measured, analytical);
}

#[test]
fn estimators_are_interchangeable_as_trait_objects() {
    // Integration-level object-safety smoke: build the estimator set
    // dynamically (exactly how callers plug custom lenses in), run each
    // against the same plan/design, and check the records line up.
    let options = RunOptions {
        engine_scale: ScaleFactor(0.005),
        ..RunOptions::default()
    };
    let query = JoinQuerySpec::q3_dual_shuffle();
    let workload = matching_workload(options, &query);
    let plan = eedc_core::Workload::plans(&workload).remove(0);
    let design = ClusterSpec::homogeneous(cluster_v_node(), 4).expect("spec is valid");

    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(Measured::new(options)),
        Box::new(Analytical),
        Box::new(eedc_core::Behavioural::default()),
    ];
    for estimator in &estimators {
        let record = estimator
            .estimate(&plan, &design)
            .expect("every lens estimates the plan");
        assert_eq!(record.estimator, estimator.name());
        assert_eq!(record.design, "4B,0W");
        assert!(record.response_time.value() > 0.0);
        assert!(record.energy.value() > 0.0);
        assert_eq!(record.node_utilization.len(), 4);
    }
}
