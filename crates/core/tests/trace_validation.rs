//! Cross-lens validation of the trace-driven behavioural simulator.
//!
//! Three claims are held here:
//!
//! 1. **Traced replay agrees with the measured lens.** A utilization trace
//!    exported from a real `PStoreCluster` execution and replayed through
//!    the node power models must reproduce the measured response time and
//!    total energy within 1% (the busy-share ↔ utilization map is an exact
//!    inverse, so the agreement is really float-exact; 1% is the stated
//!    envelope).
//! 2. **The Section 3.2 shape.** The DBMS-X engine behaviour — disk-staged
//!    intermediates plus a mid-query restart — strictly dominates the
//!    pipelined P-store behaviour in both response time and energy on every
//!    design of the homogeneous scale-down sweep.
//! 3. **Figures series round-trip.** A four-lens experiment report written
//!    by the JSON writer reads back bit-equal through the
//!    `eedc_core::json` reader.

use eedc_core::{
    Analytical, Behavioural, Experiment, ExperimentReport, Measured, SweepJoin, Traced, Workload,
};
use eedc_dbmsim::{replay, EngineBehaviour, UtilizationTrace};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::catalog::cluster_v_node;
use eedc_tpch::ScaleFactor;

/// Engine-scale options small enough for test-speed measured runs.
fn small_options() -> RunOptions {
    RunOptions {
        engine_scale: ScaleFactor(0.001),
        ..RunOptions::default()
    }
}

fn homogeneous(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(cluster_v_node(), n).expect("spec is valid")
}

#[test]
fn traced_replay_of_an_exported_trace_matches_the_measured_lens() {
    let design = homogeneous(4);
    let options = small_options();
    let cluster = PStoreCluster::load(design.clone(), options).unwrap();
    let query = JoinQuerySpec::q3_dual_shuffle();
    let execution = cluster.run(&query, JoinStrategy::DualShuffle).unwrap();

    let trace =
        UtilizationTrace::from_execution(&execution, design.nodes(), options.in_memory).unwrap();
    assert_eq!(trace.len(), execution.phases.len());
    assert_eq!(trace.node_count(), 4);

    let replayed = replay(&trace, design.nodes()).unwrap();
    // Stated envelope: 1%. The busy-share round trip is exact, so the
    // agreement is limited only by float arithmetic.
    let measured_time = execution.response_time().value();
    let measured_energy = execution.energy().value();
    let dt = (replayed.response_time().value() - measured_time).abs() / measured_time;
    let de = (replayed.energy().value() - measured_energy).abs() / measured_energy;
    assert!(dt < 0.01, "response time diverged by {:.4}%", 100.0 * dt);
    assert!(de < 0.01, "energy diverged by {:.4}%", 100.0 * de);
    // Per-node energies agree too — the trace preserves the whole profile,
    // not just the totals.
    let node_energy = replayed.node_energy();
    for (phase, replayed_phase) in execution.phases.iter().zip(&replayed.phases) {
        assert_eq!(phase.label, replayed_phase.label);
    }
    for (id, joules) in node_energy.iter().enumerate() {
        let measured: f64 = execution
            .phases
            .iter()
            .map(|p| p.node_energy[id].value())
            .sum();
        let diff = (joules.value() - measured).abs() / measured;
        assert!(
            diff < 0.01,
            "node {id} energy diverged by {:.4}%",
            100.0 * diff
        );
    }
}

#[test]
fn dbms_x_shaping_of_a_measured_trace_costs_strictly_more() {
    // The engine what-if the measured lens cannot reach: take a real run's
    // trace and ask what DBMS-X would have done with it.
    let design = homogeneous(4);
    let options = small_options();
    let cluster = PStoreCluster::load(design.clone(), options).unwrap();
    let execution = cluster
        .run(&JoinQuerySpec::q3_dual_shuffle(), JoinStrategy::DualShuffle)
        .unwrap();
    let trace =
        UtilizationTrace::from_execution(&execution, design.nodes(), options.in_memory).unwrap();

    let dbms_x = EngineBehaviour::dbms_x();
    let shaped = dbms_x.apply(&trace, design.nodes()).unwrap();
    let replayed = replay(&shaped, design.nodes()).unwrap();
    assert!(replayed.response_time() > execution.response_time());
    assert!(replayed.energy() > execution.energy());
    // The staged phases exist and burn floor power at zero CPU busy time.
    let stage = replayed.phase("probe/stage").expect("staging phase exists");
    assert!(stage.energy.value() > 0.0);
    assert_eq!(stage.cpu_time.value(), 0.0);
}

#[test]
fn dbms_x_restart_behaviour_dominates_pstore_on_the_scale_down_sweep() {
    // The Section 3.2 shape assertion: across the homogeneous scale-down
    // sweep, the DBMS-X engine strictly dominates the P-store engine on
    // energy (and time) at every cluster size, and the penalty includes
    // both staging and restart work.
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let report = Experiment::new(&workload)
        .designs([16, 8, 4].map(homogeneous))
        .estimator(Traced::pstore())
        .estimator(Traced::dbms_x())
        .run()
        .unwrap();
    let pstore = &report.series[0];
    let dbms_x = &report.series[1];
    assert_eq!(pstore.records.len(), 3);
    assert_eq!(dbms_x.records.len(), 3);
    for (p, x) in pstore.records.iter().zip(&dbms_x.records) {
        assert_eq!(p.design, x.design);
        assert!(
            x.energy > p.energy,
            "{}: DBMS-X energy {:.0} does not dominate P-store {:.0}",
            p.design,
            x.energy.value(),
            p.energy.value(),
        );
        assert!(x.response_time > p.response_time, "{}", p.design);
        // The restart alone replays half the run: the penalty is at least
        // 1.5x before staging is even counted.
        assert!(
            x.energy.value() > 1.5 * p.energy.value(),
            "{}: penalty ratio only {:.3}",
            p.design,
            x.energy.value() / p.energy.value(),
        );
        // Staged and redo phases show up in the per-phase series.
        assert!(x.phases.iter().any(|ph| ph.label.ends_with("/stage")));
        assert!(x.phases.iter().any(|ph| ph.label.starts_with("redo1/")));
        assert!(p.phases.iter().all(|ph| !ph.label.contains("stage")));
    }
    // And the pipelined traced lens reproduces the analytical lens, so the
    // dominance statement transfers to the closed-form numbers as well.
    let analytical = Experiment::new(&workload)
        .designs([16, 8, 4].map(homogeneous))
        .estimator(Analytical)
        .run()
        .unwrap();
    for (a, p) in analytical.series[0].records.iter().zip(&pstore.records) {
        assert!(
            (a.energy.value() - p.energy.value()).abs() < 1e-6 * a.energy.value(),
            "{}: traced(p-store) diverged from analytical",
            a.design
        );
    }
}

#[test]
fn four_lens_figures_series_round_trip_through_the_json_reader() {
    // One experiment, all four lenses over the same two designs — the
    // figures pipeline's shape — written to disk and read back bit-equal.
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let report = Experiment::new(&workload)
        .designs([homogeneous(4), homogeneous(2)])
        .estimator(Measured::new(small_options()))
        .estimator(Analytical)
        .estimator(Behavioural::default())
        .estimator(Traced::dbms_x())
        .run()
        .unwrap();
    assert_eq!(report.series.len(), 4);
    let estimators: Vec<&str> = report.series.iter().map(|s| s.estimator.as_str()).collect();
    assert_eq!(
        estimators,
        ["measured", "analytical", "behavioural", "traced:dbms-x"]
    );

    let dir = std::env::temp_dir().join("eedc-trace-validation");
    let path = dir.join("four_lenses.json");
    report.write_json(&path).unwrap();
    let restored = ExperimentReport::read_json(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(restored, report);

    // The restored report is fully usable: measured records keep their
    // engine-verified cardinalities, phase breakdowns and normalized points.
    let measured = restored.series_for("measured", &workload.label()).unwrap();
    assert!(measured.records[0].output_rows.unwrap() > 0);
    assert_eq!(measured.records[0].phases.len(), 2);
    assert_eq!(
        restored.series_for("traced:dbms-x", &workload.label()),
        report.series_for("traced:dbms-x", &workload.label())
    );
}
