//! The estimator side of the experiment API: *how* a workload is evaluated,
//! and the [`Experiment`] runner that sweeps any [`Workload`] across cluster
//! designs under one or more estimators.
//!
//! The paper's whole argument runs on comparing the *same* workload through
//! four lenses:
//!
//! * [`Measured`] — the P-store cluster runtime of Section 5
//!   (engine-scale correctness, nominal-scale time/energy),
//! * [`Analytical`] — the closed-form Section 5.4 design model,
//! * [`Behavioural`] — the first-order Section 3.1 scaling law,
//! * [`Traced`] — the trace-driven behavioural simulator of Sections 3–3.2:
//!   per-node, per-phase utilization traces replayed through the node power
//!   models under a configurable engine behaviour (pipelined P-store, or
//!   the disk-staging / mid-query-restart DBMS-X engine).
//!
//! Every lens implements [`Estimator`] and yields the same [`RunRecord`]
//! shape — response time, energy, EDP, per-node utilization and energy, and
//! a normalized-vs-reference point — so examples, benches, validation tests
//! and the figures pipeline stop hand-wiring the comparison. Records
//! serialize to JSON through [`crate::json`] for the figures pipeline, and
//! reports round-trip back via [`ExperimentReport::from_json`].
//!
//! ```no_run
//! use eedc_core::{Analytical, Behavioural, Experiment, SweepJoin};
//! use eedc_pstore::{ClusterSpec, JoinQuerySpec};
//! use eedc_simkit::catalog::cluster_v_node;
//!
//! let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
//! let report = Experiment::new(&workload)
//!     .designs((1..=4).map(|i| ClusterSpec::homogeneous(cluster_v_node(), 4 * i).unwrap()))
//!     .estimator(Analytical)
//!     .estimator(Behavioural::default())
//!     .run()
//!     .unwrap();
//! for series in &report.series {
//!     for record in &series.records {
//!         println!("{}: {:?}", record.design, record.normalized);
//!     }
//! }
//! ```

use crate::error::CoreError;
use crate::json::JsonValue;
use crate::model::{AnalyticalModel, ModelPrediction, PhasePrediction};
use crate::workload::{ServingParams, Workload, WorkloadPlan};
use eedc_dbmsim::{
    busy_share_from_utilization, replay, simulate_serving, BehaviouralModel, BusyShares,
    EnergyAwareScheduler, EngineBehaviour, FaultModel, FcfsScheduler, JoinShortestQueue,
    PowerOfTwoChoices, ReplayPhase, Scheduler, ServiceProfile, ServingConfig, ServingServer,
    TransitionCost, UtilizationTrace,
};
use eedc_pstore::stats::{Bottleneck, ExecutionMode, PhaseStats, QueryExecution};
use eedc_pstore::{
    ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, PStoreError, RunOptions,
};
use eedc_simkit::metrics::{Measurement, NormalizedPoint, NormalizedSeries};
use eedc_simkit::units::{Joules, Megabytes, Seconds, Watts};
use eedc_simkit::{NodeClass, NodeSpec};
use eedc_tpch::{QueryId, QueryProfile};
use std::cell::RefCell;
use std::io;
use std::path::Path;
use std::rc::Rc;

/// One execution phase of a run, shaped identically for measured and modeled
/// runs (behavioural extrapolations carry no phase breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label (`"build"` / `"probe"`).
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Cluster energy over the phase.
    pub energy: Joules,
    /// Bytes that crossed the network.
    pub bytes_over_network: Megabytes,
    /// Time the slowest producer spent scanning.
    pub scan_time: Seconds,
    /// Completion time of the network transfer.
    pub network_time: Seconds,
    /// Time the slowest consumer spent building/probing.
    pub compute_time: Seconds,
    /// The component that bounded the phase.
    pub bottleneck: Bottleneck,
}

impl From<&PhaseStats> for PhaseRecord {
    fn from(p: &PhaseStats) -> Self {
        Self {
            label: p.label.clone(),
            duration: p.duration,
            energy: p.energy,
            bytes_over_network: p.bytes_over_network,
            scan_time: p.scan_time,
            network_time: p.network_time,
            compute_time: p.compute_time,
            bottleneck: p.bottleneck,
        }
    }
}

impl From<&PhasePrediction> for PhaseRecord {
    fn from(p: &PhasePrediction) -> Self {
        Self {
            label: p.label.clone(),
            duration: p.duration,
            energy: p.energy,
            bytes_over_network: p.bytes_over_network,
            scan_time: p.scan_time,
            network_time: p.network_time,
            compute_time: p.compute_time,
            bottleneck: p.bottleneck,
        }
    }
}

/// The uniform result of estimating one workload plan on one cluster design
/// — the currency of the experiment API, identical across all estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Label of the workload plan.
    pub workload: String,
    /// Name of the estimator that produced the record.
    pub estimator: String,
    /// Label of the design (`"2B,2W"` convention).
    pub design: String,
    /// The join strategy evaluated.
    pub strategy: JoinStrategy,
    /// Homogeneous or heterogeneous execution.
    pub mode: ExecutionMode,
    /// Number of identical concurrent queries in the batch.
    pub concurrency: usize,
    /// Query (batch) response time.
    pub response_time: Seconds,
    /// Total cluster energy.
    pub energy: Joules,
    /// Time-averaged per-node CPU utilization, in cluster node order.
    pub node_utilization: Vec<f64>,
    /// Per-node energy, in cluster node order; sums to `energy`.
    pub node_energy: Vec<Joules>,
    /// Per-phase breakdown (empty for behavioural extrapolations).
    pub phases: Vec<PhaseRecord>,
    /// Verified join output rows — measured runs only.
    pub output_rows: Option<usize>,
    /// Serving-level statistics (latency percentiles, drop rate,
    /// energy-per-query) — [`Serving`] runs only.
    pub serving: Option<ServingStats>,
    /// The record's (performance, energy) point normalized against the
    /// experiment's reference design; filled in by [`Experiment::run`].
    pub normalized: Option<NormalizedPoint>,
}

/// Queueing statistics of one serving run — the fields only an open-loop
/// discrete-event simulation can produce, carried alongside the closed-form
/// shape of [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingStats {
    /// Placement policy that scheduled the queries.
    pub scheduler: String,
    /// Arrival-law name (`"poisson"` / `"trace"` / `"ramp"`). `None` when
    /// read back from a report written before arrival processes existed.
    pub arrival: Option<String>,
    /// Offered load (mean arrivals per second over the window).
    pub offered_qps: f64,
    /// Completions per second over the run.
    pub achieved_qps: f64,
    /// Queries that arrived / completed / were dropped / timed out.
    pub arrivals: usize,
    /// Queries that completed service.
    pub completed: usize,
    /// Arrivals rejected because the admission queue was full.
    pub dropped: usize,
    /// Queued queries abandoned after exceeding the configured wait bound.
    pub timed_out: usize,
    /// Fraction of arrivals lost to drops or timeouts.
    pub drop_rate: f64,
    /// Median latency.
    pub p50: Seconds,
    /// 95th-percentile latency.
    pub p95: Seconds,
    /// 99th-percentile latency.
    pub p99: Seconds,
    /// Mean completed-query latency.
    pub mean_latency: Seconds,
    /// Mean admission-queue wait before service.
    pub mean_wait: Seconds,
    /// Total run energy (idle power included) per completed query.
    pub energy_per_query: Joules,
    /// Time-averaged queries in system (waiting + in flight) per pool.
    /// Empty when read back from a report written before queue-depth
    /// accounting existed.
    pub pool_mean_depth: Vec<f64>,
    /// High-water mark of each pool's own queue (waiting only); empty for
    /// pre-queue-depth reports.
    pub pool_max_queued: Vec<usize>,
    /// Availability and lifecycle accounting — present only when the run
    /// carried an active [`FaultModel`], so
    /// fault-free reports keep their pre-fault byte shape.
    pub faults: Option<FaultStats>,
}

/// Fault-injection and cluster-lifecycle accounting of one serving run:
/// what failed, what the failures cost, and how the elastic policy moved
/// the fleet. Rides inside [`ServingStats`] only when the run's
/// [`FaultModel`] actually did something.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Fraction of pool-time not lost to failures (repair + warm-up);
    /// deliberate parking by the scale policy does not count against it.
    pub availability: f64,
    /// Pool-down events (hazard draws plus scripted outages) that fired.
    pub failures: usize,
    /// In-flight queries killed by a pool failure.
    pub killed: usize,
    /// Killed queries re-admitted under the recovery policy.
    pub readmitted: usize,
    /// Parked pools revived by the scale policy.
    pub scale_out_events: usize,
    /// Idle pools parked by the scale policy.
    pub scale_in_events: usize,
    /// Summed pool-seconds lost to repair and restart warm-up.
    pub fault_downtime: Seconds,
    /// Energy billed to restarts and scale migrations (data movement).
    pub overhead_energy: Joules,
}

impl FaultStats {
    /// Render the stats as a JSON object (nested under the serving
    /// object's `"faults"` key).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("availability", self.availability)
            .set("failures", self.failures)
            .set("killed", self.killed)
            .set("readmitted", self.readmitted)
            .set("scale_out_events", self.scale_out_events)
            .set("scale_in_events", self.scale_in_events)
            .set("fault_downtime_s", self.fault_downtime.value())
            .set("overhead_energy_j", self.overhead_energy.value());
        obj
    }

    /// Reconstruct the stats from the shape [`to_json`](Self::to_json)
    /// emits.
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        Ok(Self {
            availability: value.f64_field("availability")?,
            failures: value.usize_field("failures")?,
            killed: value.usize_field("killed")?,
            readmitted: value.usize_field("readmitted")?,
            scale_out_events: value.usize_field("scale_out_events")?,
            scale_in_events: value.usize_field("scale_in_events")?,
            fault_downtime: Seconds(value.f64_field("fault_downtime_s")?),
            overhead_energy: Joules(value.f64_field("overhead_energy_j")?),
        })
    }
}

impl ServingStats {
    /// Render the stats as a JSON object. The later-vintage fields
    /// (`arrival`, the queue-depth vectors, the nested `faults` object) are
    /// emitted only when present, so stats read from an older report
    /// re-write byte-identically.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("scheduler", self.scheduler.clone());
        if let Some(arrival) = &self.arrival {
            obj.set("arrival", arrival.clone());
        }
        obj.set("offered_qps", self.offered_qps)
            .set("achieved_qps", self.achieved_qps)
            .set("arrivals", self.arrivals)
            .set("completed", self.completed)
            .set("dropped", self.dropped)
            .set("timed_out", self.timed_out)
            .set("drop_rate", self.drop_rate)
            .set("p50_s", self.p50.value())
            .set("p95_s", self.p95.value())
            .set("p99_s", self.p99.value())
            .set("mean_latency_s", self.mean_latency.value())
            .set("mean_wait_s", self.mean_wait.value())
            .set("energy_per_query_j", self.energy_per_query.value());
        if !self.pool_mean_depth.is_empty() {
            obj.set("pool_mean_depth", self.pool_mean_depth.clone());
        }
        if !self.pool_max_queued.is_empty() {
            obj.set("pool_max_queued", self.pool_max_queued.clone());
        }
        if let Some(faults) = &self.faults {
            obj.set("faults", faults.to_json());
        }
        obj
    }

    /// Reconstruct the stats from the JSON shape
    /// [`to_json`](Self::to_json) emits. Reports written before PR 9 carry
    /// no `arrival` / queue-depth keys; those read back as `None` / empty
    /// and re-write with the keys absent — byte-compatible.
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        let arrival = match value.get("arrival") {
            None | Some(JsonValue::Null) => None,
            Some(kind) => Some(
                kind.as_str()
                    .ok_or_else(|| CoreError::invalid("serving 'arrival' is not a string"))?
                    .to_string(),
            ),
        };
        let f64_array = |key: &str| -> Result<Vec<f64>, CoreError> {
            match value.get(key) {
                None | Some(JsonValue::Null) => Ok(Vec::new()),
                Some(_) => value
                    .array_field(key)?
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            CoreError::invalid(format!("serving '{key}' holds a non-number"))
                        })
                    })
                    .collect(),
            }
        };
        Ok(Self {
            scheduler: value.str_field("scheduler")?.to_string(),
            arrival,
            offered_qps: value.f64_field("offered_qps")?,
            achieved_qps: value.f64_field("achieved_qps")?,
            arrivals: value.usize_field("arrivals")?,
            completed: value.usize_field("completed")?,
            dropped: value.usize_field("dropped")?,
            timed_out: value.usize_field("timed_out")?,
            drop_rate: value.f64_field("drop_rate")?,
            p50: Seconds(value.f64_field("p50_s")?),
            p95: Seconds(value.f64_field("p95_s")?),
            p99: Seconds(value.f64_field("p99_s")?),
            mean_latency: Seconds(value.f64_field("mean_latency_s")?),
            mean_wait: Seconds(value.f64_field("mean_wait_s")?),
            energy_per_query: Joules(value.f64_field("energy_per_query_j")?),
            pool_mean_depth: f64_array("pool_mean_depth")?,
            pool_max_queued: f64_array("pool_max_queued")?
                .into_iter()
                .map(|n| n as usize)
                .collect(),
            faults: match value.get("faults") {
                None | Some(JsonValue::Null) => None,
                Some(stats) => Some(FaultStats::from_json(stats)?),
            },
        })
    }
}

impl PhaseRecord {
    /// Reconstruct a phase record from the JSON shape the writer emits.
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        Ok(Self {
            label: value.str_field("label")?.to_string(),
            duration: Seconds(value.f64_field("duration_s")?),
            energy: Joules(value.f64_field("energy_j")?),
            bytes_over_network: Megabytes(value.f64_field("bytes_over_network_mb")?),
            scan_time: Seconds(value.f64_field("scan_time_s")?),
            network_time: Seconds(value.f64_field("network_time_s")?),
            compute_time: Seconds(value.f64_field("compute_time_s")?),
            bottleneck: value.str_field("bottleneck")?.parse()?,
        })
    }
}

impl RunRecord {
    /// Collapse into a [`Measurement`] for normalization / EDP analysis.
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.response_time, self.energy)
    }

    /// Reconstruct a record from the JSON shape [`to_json`](Self::to_json)
    /// emits — the reader half of the figures pipeline, used for baseline
    /// comparisons against series already on disk.
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        let number_array = |key: &str| -> Result<Vec<f64>, CoreError> {
            value
                .array_field(key)?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        CoreError::invalid(format!("JSON field '{key}' holds a non-number"))
                    })
                })
                .collect()
        };
        let output_rows = match value.field("output_rows")? {
            JsonValue::Null => None,
            _ => Some(value.usize_field("output_rows")?),
        };
        let normalized = match value.field("normalized")? {
            JsonValue::Null => None,
            point => Some(NormalizedPoint {
                performance: point.f64_field("performance")?,
                energy: point.f64_field("energy")?,
            }),
        };
        // Reports written before the serving lens carry no "serving" key at
        // all; both absent and null read back as None, and None re-writes
        // with the key absent — old reports stay byte-compatible.
        let serving = match value.get("serving") {
            None | Some(JsonValue::Null) => None,
            Some(stats) => Some(ServingStats::from_json(stats)?),
        };
        Ok(Self {
            workload: value.str_field("workload")?.to_string(),
            estimator: value.str_field("estimator")?.to_string(),
            design: value.str_field("design")?.to_string(),
            strategy: value.str_field("strategy")?.parse()?,
            mode: value.str_field("mode")?.parse()?,
            concurrency: value.usize_field("concurrency")?,
            response_time: Seconds(value.f64_field("response_time_s")?),
            energy: Joules(value.f64_field("energy_j")?),
            node_utilization: number_array("node_utilization")?,
            node_energy: number_array("node_energy_j")?
                .into_iter()
                .map(Joules)
                .collect(),
            phases: value
                .array_field("phases")?
                .iter()
                .map(PhaseRecord::from_json)
                .collect::<Result<_, _>>()?,
            output_rows,
            serving,
            normalized,
        })
    }

    /// The Energy-Delay Product in joule·seconds.
    pub fn edp(&self) -> f64 {
        self.measurement().edp()
    }

    /// Render the record as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("workload", self.workload.clone())
            .set("estimator", self.estimator.clone())
            .set("design", self.design.clone())
            .set("strategy", self.strategy.to_string())
            .set("mode", self.mode.to_string())
            .set("concurrency", self.concurrency)
            .set("response_time_s", self.response_time.value())
            .set("energy_j", self.energy.value())
            .set("edp_js", self.edp())
            .set("node_utilization", self.node_utilization.clone())
            .set(
                "node_energy_j",
                self.node_energy
                    .iter()
                    .map(|e| e.value())
                    .collect::<Vec<_>>(),
            );
        let mut phases = JsonValue::array();
        for phase in &self.phases {
            let mut p = JsonValue::object();
            p.set("label", phase.label.clone())
                .set("duration_s", phase.duration.value())
                .set("energy_j", phase.energy.value())
                .set("bytes_over_network_mb", phase.bytes_over_network.value())
                .set("scan_time_s", phase.scan_time.value())
                .set("network_time_s", phase.network_time.value())
                .set("compute_time_s", phase.compute_time.value())
                .set("bottleneck", phase.bottleneck.to_string());
            phases.push(p);
        }
        obj.set("phases", phases);
        obj.set("output_rows", self.output_rows);
        if let Some(serving) = &self.serving {
            obj.set("serving", serving.to_json());
        }
        match &self.normalized {
            Some(point) => {
                let mut p = JsonValue::object();
                p.set("performance", point.performance)
                    .set("energy", point.energy);
                obj.set("normalized", p);
            }
            None => {
                obj.set("normalized", JsonValue::Null);
            }
        }
        obj
    }
}

/// An evaluation lens over workload plans: measured execution, analytical
/// prediction, or behavioural extrapolation — anything that can turn a
/// `(plan, design)` pair into a [`RunRecord`].
///
/// The trait is object safe (`Box<dyn Estimator>` works), so callers can mix
/// lenses in one experiment and the Section 6 advisor can rank designs from
/// measured *or* modeled points.
pub trait Estimator {
    /// Short name used for report columns and JSON (`"measured"`,
    /// `"analytical"`, `"behavioural"`).
    fn name(&self) -> String;

    /// Estimate one plan on one design.
    ///
    /// A design the workload cannot run on at all (its hash table fits no
    /// execution mode) must surface as [`CoreError::Runtime`] so sweeps can
    /// record it as infeasible rather than aborting.
    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError>;
}

impl Estimator for Box<dyn Estimator> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        (**self).estimate(plan, design)
    }
}

/// The measured lens: load a [`PStoreCluster`] for the design and actually
/// execute the plan — engine-scale relational correctness, nominal-scale
/// time and energy, exactly the Section 5 methodology. Every estimate
/// checks the distributed join's output cardinality against the scalar
/// reference join and fails loudly on a mismatch, so a measured
/// [`RunRecord`] is always an engine-verified point.
///
/// Loaded clusters are cached per estimator instance, keyed on the
/// `(design, options)` pair: generating and partitioning the engine-scale
/// tables dominates the cost of an estimate, and a multi-plan sweep (a
/// [`crate::ConcurrencySweep`] is `levels` plans over the same designs)
/// used to regenerate identical clusters once per plan. Plans that patch
/// the effective options (a [`crate::SkewedJoin`]'s skew lands in
/// `options.skew`) key separate entries, so a cache hit is always an
/// identical cluster.
#[derive(Debug, Clone)]
pub struct Measured {
    options: RunOptions,
    cache: RefCell<Vec<CachedCluster>>,
}

/// One cached engine-scale cluster: the effective options and node specs
/// that keyed its load, plus the shared cluster itself.
type CachedCluster = (RunOptions, Vec<NodeSpec>, Rc<PStoreCluster>);

impl Measured {
    /// A measured estimator loading clusters with the given options. The
    /// *plan* is the single source of truth for join-key skew: its `skew`
    /// field (including `None`) replaces whatever the options carry, so the
    /// measured and analytical lenses always evaluate the same workload.
    pub fn new(options: RunOptions) -> Self {
        Self {
            options,
            cache: RefCell::new(Vec::new()),
        }
    }

    /// The options used to load clusters.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Number of distinct `(design, options)` clusters currently cached.
    pub fn cached_clusters(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The cluster for `(design, options)`, loading and caching it on first
    /// use.
    fn cluster(
        &self,
        design: &ClusterSpec,
        options: RunOptions,
    ) -> Result<Rc<PStoreCluster>, CoreError> {
        if let Some((_, _, cluster)) =
            self.cache
                .borrow()
                .iter()
                .find(|(cached_options, nodes, _)| {
                    *cached_options == options && nodes.as_slice() == design.nodes()
                })
        {
            return Ok(Rc::clone(cluster));
        }
        let cluster = Rc::new(PStoreCluster::load(design.clone(), options)?);
        self.cache
            .borrow_mut()
            .push((options, design.nodes().to_vec(), Rc::clone(&cluster)));
        Ok(cluster)
    }
}

/// Two measured estimators are equal when they load clusters the same way;
/// the cache is a transparent performance detail.
impl PartialEq for Measured {
    fn eq(&self, other: &Self) -> bool {
        self.options == other.options
    }
}

impl Default for Measured {
    fn default() -> Self {
        Self::new(RunOptions::default())
    }
}

impl Estimator for Measured {
    fn name(&self) -> String {
        "measured".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let mut options = self.options;
        options.skew = plan.skew;
        let cluster = self.cluster(design, options)?;
        let execution = cluster.run_batch(&plan.query, plan.strategy, plan.sweep.concurrency)?;
        let reference = cluster.reference_join_rows(&plan.query)?;
        if execution.output_rows != reference {
            return Err(CoreError::invalid(format!(
                "{}: distributed join produced {} rows but the scalar reference produced {reference}",
                execution.cluster_label, execution.output_rows,
            )));
        }
        Ok(record_from_execution(plan, self.name(), &execution))
    }
}

fn record_from_execution(
    plan: &WorkloadPlan,
    estimator: String,
    execution: &QueryExecution,
) -> RunRecord {
    let (node_utilization, node_energy) = aggregate_nodes(
        execution
            .phases
            .iter()
            .map(|p| (p.duration, &p.node_utilization[..], &p.node_energy[..])),
    );
    RunRecord {
        workload: plan.label.clone(),
        estimator,
        design: execution.cluster_label.clone(),
        strategy: execution.strategy,
        mode: execution.mode,
        concurrency: execution.concurrency,
        response_time: execution.response_time(),
        energy: execution.energy(),
        node_utilization,
        node_energy,
        phases: execution.phases.iter().map(PhaseRecord::from).collect(),
        output_rows: Some(execution.output_rows),
        serving: None,
        normalized: None,
    }
}

/// Duration-weighted per-node utilization and per-node energy totals across
/// phases.
fn aggregate_nodes<'a>(
    phases: impl Iterator<Item = (Seconds, &'a [f64], &'a [Joules])>,
) -> (Vec<f64>, Vec<Joules>) {
    let mut total_time = 0.0;
    let mut weighted = Vec::new();
    let mut energy: Vec<Joules> = Vec::new();
    for (duration, utilization, joules) in phases {
        if weighted.is_empty() {
            weighted = vec![0.0; utilization.len()];
            energy = vec![Joules::zero(); joules.len()];
        }
        total_time += duration.value();
        for (acc, &u) in weighted.iter_mut().zip(utilization) {
            *acc += u * duration.value();
        }
        for (acc, &e) in energy.iter_mut().zip(joules) {
            *acc += e;
        }
    }
    if total_time > f64::EPSILON {
        for u in &mut weighted {
            *u /= total_time;
        }
    }
    (weighted, energy)
}

/// The analytical lens: the closed-form Section 5.4 model, no data
/// generation and no flow simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Analytical;

impl Estimator for Analytical {
    fn name(&self) -> String {
        "analytical".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let model = AnalyticalModel::new(plan.sweep)?;
        let prediction = model.predict_skewed(design, plan.strategy, plan.skew.as_ref())?;
        Ok(record_from_prediction(plan, self.name(), &prediction))
    }
}

fn record_from_prediction(
    plan: &WorkloadPlan,
    estimator: String,
    prediction: &ModelPrediction,
) -> RunRecord {
    let (node_utilization, node_energy) = aggregate_nodes(
        prediction
            .phases
            .iter()
            .map(|p| (p.duration, &p.node_utilization[..], &p.node_energy[..])),
    );
    RunRecord {
        workload: plan.label.clone(),
        estimator,
        design: prediction.cluster_label.clone(),
        strategy: prediction.strategy,
        mode: prediction.mode,
        concurrency: plan.sweep.concurrency,
        response_time: prediction.response_time(),
        energy: prediction.energy(),
        node_utilization,
        node_energy,
        phases: prediction.phases.iter().map(PhaseRecord::from).collect(),
        output_rows: None,
        serving: None,
        normalized: None,
    }
}

/// The behavioural lens: the first-order Section 3 scaling law, extrapolating
/// a work profile across cluster sizes with the paper's utilization→power
/// energy model.
///
/// Plans carrying a measured [`QueryProfile`] (the Vertica studies) are
/// extrapolated directly; for sweep-join plans without one, the estimator
/// derives the profile — and the absolute anchor — from the analytical model
/// evaluated at the reference configuration (`reference_nodes` homogeneous
/// nodes of the design's leading node type), mirroring how the paper
/// measured its profiles on the eight-node Cluster-V reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Behavioural {
    reference_nodes: usize,
}

impl Behavioural {
    /// A behavioural estimator anchored at the paper's eight-node reference.
    pub fn new() -> Self {
        Self { reference_nodes: 8 }
    }

    /// Anchor the scaling law at a different reference node count.
    pub fn with_reference_nodes(reference_nodes: usize) -> Self {
        Self {
            reference_nodes: reference_nodes.max(1),
        }
    }

    /// Derive a work profile (and absolute anchor) for a profile-less plan
    /// from the analytical model at the reference configuration
    /// (`reference_nodes` homogeneous nodes of the design's leading type).
    /// When that synthetic reference cannot plan the workload — its node
    /// count may be memory-tighter than the actual design — the design
    /// itself (already known feasible) anchors the derivation instead.
    fn derive_profile(
        &self,
        plan: &WorkloadPlan,
        design: &ClusterSpec,
    ) -> Result<(QueryProfile, Seconds), CoreError> {
        let node = design.nodes()[0].clone();
        let reference = ClusterSpec::homogeneous(node, self.reference_nodes)?;
        let model = AnalyticalModel::new(plan.sweep)?;
        let (prediction, predicted_nodes) =
            match model.predict_skewed(&reference, plan.strategy, plan.skew.as_ref()) {
                Ok(prediction) => (prediction, self.reference_nodes),
                Err(_) => (
                    model.predict_skewed(design, plan.strategy, plan.skew.as_ref())?,
                    design.len(),
                ),
            };
        let total = prediction.response_time().value();
        let mut repartition = 0.0;
        let mut broadcast = 0.0;
        for phase in &prediction.phases {
            let bound = phase.network_time.value().min(phase.duration.value());
            if plan.strategy == JoinStrategy::Broadcast && phase.label == "build" {
                broadcast += bound;
            } else {
                repartition += bound;
            }
        }
        let local = (total - repartition - broadcast).max(0.0);
        // The sweep join is the paper's Q3-shaped workload; `custom`
        // normalizes the fractions to sum to one.
        let profile = QueryProfile::custom(QueryId::Q3, local, repartition, broadcast);
        // The anchor must be expressed in reference-configuration terms:
        // `predict` multiplies it by `rel(n)`, so divide out the relative
        // time of the cluster the derivation actually predicted on (1 in
        // the common case where that cluster IS the reference).
        let rel = BehaviouralModel {
            profile: profile.clone(),
            reference_nodes: self.reference_nodes,
        }
        .relative_response_time(predicted_nodes);
        let anchor = if rel > f64::EPSILON {
            total / rel
        } else {
            total
        };
        Ok((profile, Seconds(anchor)))
    }
}

impl Default for Behavioural {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for Behavioural {
    fn name(&self) -> String {
        "behavioural".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let (mode, profile, derived_anchor) = match &plan.profile {
            // A measured profile describes a run that demonstrably completed
            // on a real DBMS (which stages to disk rather than refusing), so
            // no memory-feasibility rule applies to it.
            Some(profile) => (ExecutionMode::Homogeneous, profile.clone(), Seconds(1.0)),
            // Profile-less sweep plans are judged on the design itself, with
            // the same hash-table rule every other lens applies — not on the
            // synthetic derivation reference, which may be differently sized.
            None => {
                let (mode, _) = eedc_pstore::select_execution_mode(
                    design.nodes(),
                    plan.strategy,
                    plan.sweep.total_hash_table(),
                    plan.sweep.hash_table_headroom,
                )?;
                let (profile, anchor) = self.derive_profile(plan, design)?;
                (mode, profile, anchor)
            }
        };
        let anchor = plan.reference_time.unwrap_or(derived_anchor);
        let model = BehaviouralModel {
            profile,
            reference_nodes: self.reference_nodes,
        };
        let prediction = model.predict(design.nodes(), anchor);
        Ok(RunRecord {
            workload: plan.label.clone(),
            estimator: self.name(),
            design: design.label(),
            strategy: plan.strategy,
            // The scaling law itself has no demotion concept, but the record
            // reports the mode the planner would select for the design.
            mode,
            concurrency: plan.sweep.concurrency,
            response_time: prediction.response_time,
            energy: prediction.energy,
            node_utilization: prediction.node_utilization,
            node_energy: prediction.node_energy,
            phases: Vec::new(),
            output_rows: None,
            serving: None,
            normalized: None,
        })
    }
}

/// The trace-driven lens: synthesize a per-node, per-phase utilization
/// trace for the plan, shape it with an [`EngineBehaviour`], and replay it
/// through the node power models — the Section 3 methodology, simulated end
/// to end (`eedc_dbmsim::trace` / `replay` / `engines`).
///
/// The trace is synthesized from the Section 5.4 analytical model's phase
/// predictions (per-node utilizations, scan/network busy fractions), so the
/// [`Traced::pstore`] engine — pipelined, never restarting — reproduces the
/// [`Analytical`] lens exactly. The point of the lens is what the *other*
/// engines do to the same trace: [`Traced::dbms_x`] models the Section 3.2
/// DBMS-X behaviour (repartitioned intermediates staged through disk,
/// plus a mid-query restart), a scenario family no measured P-store run can
/// reach.
///
/// ```
/// use eedc_core::{Experiment, SweepJoin, Traced};
/// use eedc_pstore::{ClusterSpec, JoinQuerySpec};
/// use eedc_simkit::catalog::cluster_v_node;
///
/// let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
/// let report = Experiment::new(&workload)
///     .designs([16, 8, 4].map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()))
///     .estimator(Traced::pstore())
///     .estimator(Traced::dbms_x())
///     .run()
///     .unwrap();
/// // Section 3.2's shape: the disk-staging, restarting engine pays strictly
/// // more time and energy than the pipelined engine on every design.
/// let (pstore, dbms_x) = (&report.series[0], &report.series[1]);
/// for (p, x) in pstore.records.iter().zip(&dbms_x.records) {
///     assert!(x.response_time > p.response_time, "{}", p.design);
///     assert!(x.energy > p.energy, "{}", p.design);
/// }
/// // The staged run's phase series carries the extra disk phases.
/// assert!(dbms_x.records[0].phases.iter().any(|p| p.label.ends_with("/stage")));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Traced {
    engine: EngineBehaviour,
    name: String,
}

impl Traced {
    /// The pipelined, restart-free P-store engine — the baseline the other
    /// engine behaviours are compared against.
    pub fn pstore() -> Self {
        Self {
            engine: EngineBehaviour::pstore_like(),
            name: "traced".into(),
        }
    }

    /// The Section 3.2 DBMS-X engine: disk-staged intermediates and a
    /// representative mid-query restart.
    pub fn dbms_x() -> Self {
        Self {
            engine: EngineBehaviour::dbms_x(),
            name: "traced:dbms-x".into(),
        }
    }

    /// A traced lens over a custom engine behaviour (named
    /// `traced:<engine>` in reports).
    pub fn with_engine(engine: EngineBehaviour) -> Self {
        let name = format!("traced:{}", engine.name);
        Self { engine, name }
    }

    /// The engine behaviour shaping the replayed traces.
    pub fn engine(&self) -> &EngineBehaviour {
        &self.engine
    }

    /// Synthesize the plan's idealized execution trace on `design` from the
    /// analytical model's phase predictions: per-node CPU busy shares from
    /// the predicted utilizations, each node's *own* port busy fraction
    /// (the closed form knows the exact per-node egress/ingress volumes,
    /// so a skewed or heterogeneous design's cold nodes are not charged
    /// the hot port's activity), and — for disk-resident plans — the scan
    /// fraction on every disk.
    fn synthesize_trace(
        plan: &WorkloadPlan,
        prediction: &ModelPrediction,
        nodes: &[NodeSpec],
    ) -> Result<UtilizationTrace, CoreError> {
        let mut trace = UtilizationTrace::new(plan.label.clone());
        for phase in &prediction.phases {
            let disk = if plan.sweep.in_memory {
                0.0
            } else {
                phase.scan_fraction()
            };
            let shares = phase
                .node_utilization
                .iter()
                .zip(nodes)
                .enumerate()
                .map(|(id, (&u, spec))| BusyShares {
                    cpu: busy_share_from_utilization(u, spec.utilization_floor),
                    disk,
                    network: phase.node_network_fraction(id),
                })
                .collect();
            trace.push_phase(phase.label.clone(), phase.duration, shares)?;
        }
        Ok(trace)
    }
}

impl Default for Traced {
    fn default() -> Self {
        Self::pstore()
    }
}

impl Estimator for Traced {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let model = AnalyticalModel::new(plan.sweep)?;
        // Feasibility is decided exactly like every other lens: the model
        // refuses designs whose hash table fits no execution mode, which
        // the series protocol records as infeasible.
        let prediction = model.predict_skewed(design, plan.strategy, plan.skew.as_ref())?;
        let trace = Self::synthesize_trace(plan, &prediction, design.nodes())?;
        let shaped = self.engine.apply(&trace, design.nodes())?;
        let result = replay(&shaped, design.nodes())?;
        Ok(RunRecord {
            workload: plan.label.clone(),
            estimator: self.name(),
            design: prediction.cluster_label.clone(),
            strategy: plan.strategy,
            mode: prediction.mode,
            concurrency: plan.sweep.concurrency,
            response_time: result.response_time(),
            energy: result.energy(),
            node_utilization: result.node_utilization(),
            node_energy: result.node_energy(),
            phases: result.phases.iter().map(record_from_replay_phase).collect(),
            output_rows: None,
            serving: None,
            normalized: None,
        })
    }
}

/// Shape a replayed phase like every other lens's phase record. Replay
/// reports busy *times* per resource rather than producer/consumer
/// completion times, so the mapping is: disk busy → `scan_time`, port busy
/// → `network_time`, CPU busy → `compute_time`, and the bottleneck is the
/// busiest of the three.
fn record_from_replay_phase(phase: &ReplayPhase) -> PhaseRecord {
    let bottleneck =
        if phase.network_time >= phase.disk_time && phase.network_time >= phase.cpu_time {
            Bottleneck::Network
        } else if phase.disk_time >= phase.cpu_time {
            Bottleneck::Scan
        } else {
            Bottleneck::Compute
        };
    PhaseRecord {
        label: phase.label.clone(),
        duration: phase.duration,
        energy: phase.energy,
        bytes_over_network: phase.network_bytes,
        scan_time: phase.disk_time,
        network_time: phase.network_time,
        compute_time: phase.cpu_time,
        bottleneck,
    }
}

/// The serving lens: run the plan's [`ServingParams`] through the
/// discrete-event serving simulator (`eedc_dbmsim::serving`) on the
/// `eedc-simkit` event kernel — the fifth lens, and the only one that can
/// answer *service* questions: latency percentiles under sustained load,
/// admission drops, energy per query with idle power amortized in.
///
/// Per-query service times and energies come from an inner estimator
/// ([`Analytical`] by default) evaluated per query template on each node
/// *pool* of the design: a heterogeneous `(b Beefy, w Wimpy)` design serves
/// from two pools, and the scheduler's per-query choice between them is the
/// paper's Beefy-vs-Wimpy placement decision ([`Serving::fcfs`] baseline,
/// the [`Serving::energy_aware`] placer, or the queue-feedback
/// [`Serving::jsq`] / [`Serving::power_of_two`] policies). Pools serve up
/// to `pool_concurrency` queries at once — dedicated slots re-priced at
/// that concurrency through the inner estimator, or processor sharing
/// priced solo. A pool that cannot run a template
/// (hash table fits no execution mode) is simply never picked for it; a
/// design where some template fits *no* pool is recorded as infeasible,
/// like every other lens.
///
/// Records carry the usual closed-form shape (`response_time` is the mean
/// latency, `energy` the whole-run energy including idle power) plus
/// [`ServingStats`], so `Experiment`/`DesignAdvisor`/the figures pipeline
/// sweep throughput–energy Pareto curves with zero new plumbing.
///
/// ```
/// use eedc_core::{Experiment, Serving, ServingWorkload, SweepJoin};
/// use eedc_pstore::{ClusterSpec, JoinQuerySpec};
/// use eedc_simkit::catalog::cluster_v_node;
/// use eedc_simkit::units::Seconds;
///
/// // Serve the Section 5.4 join at 0.02 queries/s for a simulated hour.
/// let query = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
/// let workload = ServingWorkload::new(&query, 0.02, Seconds(3_600.0), 7);
/// let report = Experiment::new(&workload)
///     .designs([16, 8, 4].map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()))
///     .estimator(Serving::fcfs())
///     .run()
///     .unwrap();
/// let records = &report.series[0].records;
/// assert_eq!(records.len(), 3);
/// for record in records {
///     let stats = record.serving.as_ref().expect("serving stats ride along");
///     assert!(stats.completed > 0);
///     assert!(stats.p99 >= stats.p50);
///     assert!(stats.energy_per_query.value() > 0.0);
/// }
/// // Same seed, same report — bit for bit.
/// let again = Experiment::new(&workload)
///     .designs([16, 8, 4].map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()))
///     .estimator(Serving::fcfs())
///     .run()
///     .unwrap();
/// assert_eq!(report.to_json_string(), again.to_json_string());
/// ```
pub struct Serving {
    inner: Box<dyn Estimator>,
    policy: ServingPolicy,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServingPolicy {
    Fcfs,
    EnergyAware,
    JoinShortestQueue,
    PowerOfTwoChoices,
}

impl Serving {
    /// FCFS placement (first idle capable pool) over analytical per-query
    /// costs — the baseline.
    pub fn fcfs() -> Self {
        Self {
            inner: Box::new(Analytical),
            policy: ServingPolicy::Fcfs,
        }
    }

    /// Energy-aware placement: each query runs on the idle pool that serves
    /// it for the fewest joules.
    pub fn energy_aware() -> Self {
        Self {
            inner: Box::new(Analytical),
            policy: ServingPolicy::EnergyAware,
        }
    }

    /// Join-shortest-queue placement: each query commits to the capable
    /// pool with the fewest queries in system (waiting + in flight).
    pub fn jsq() -> Self {
        Self {
            inner: Box::new(Analytical),
            policy: ServingPolicy::JoinShortestQueue,
        }
    }

    /// Power-of-two-choices placement: probe two random capable pools (via
    /// the run's seeded RNG) and commit to the shallower one.
    pub fn power_of_two() -> Self {
        Self {
            inner: Box::new(Analytical),
            policy: ServingPolicy::PowerOfTwoChoices,
        }
    }

    /// Replace the inner estimator supplying per-template service costs
    /// (e.g. [`Traced::dbms_x`] to serve under an engine behaviour). The
    /// lens is then named `serving…@<inner>` in reports.
    pub fn with_inner(mut self, inner: impl Estimator + 'static) -> Self {
        self.inner = Box::new(inner);
        self
    }

    /// The node pools of a design: Beefy and Wimpy sub-clusters for a
    /// heterogeneous design, the whole design otherwise. Each pool serves
    /// up to the plan's `pool_concurrency` queries at a time.
    fn pools(design: &ClusterSpec) -> Result<Vec<(String, Vec<usize>, ClusterSpec)>, CoreError> {
        let ids_of = |class: NodeClass| -> Vec<usize> {
            design
                .nodes()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.class == class)
                .map(|(id, _)| id)
                .collect()
        };
        let beefy = ids_of(NodeClass::Beefy);
        let wimpy = ids_of(NodeClass::Wimpy);
        if beefy.is_empty() || wimpy.is_empty() {
            return Ok(vec![(
                design.label(),
                (0..design.len()).collect(),
                design.clone(),
            )]);
        }
        [beefy, wimpy]
            .into_iter()
            .map(|ids| {
                let nodes: Vec<NodeSpec> =
                    ids.iter().map(|&id| design.nodes()[id].clone()).collect();
                let label = format!(
                    "{}({})",
                    if nodes[0].class == NodeClass::Beefy {
                        "beefy"
                    } else {
                        "wimpy"
                    },
                    ids.len()
                );
                Ok((label, ids, ClusterSpec::from_nodes(nodes)?))
            })
            .collect()
    }

    /// Data-movement cost of one elastic scale transition under the
    /// port-volume model: the largest template's working set (build +
    /// probe bytes) is repartitioned evenly across the design's NICs, the
    /// move takes as long as the slowest port needs for its share, and
    /// each node's floor power burns for its own transfer time.
    fn derived_migration_cost(params: &ServingParams, design: &ClusterSpec) -> TransitionCost {
        let mut working_set = Megabytes(0.0);
        for template in &params.templates {
            let volume = template.sweep.build_bytes + template.sweep.probe_bytes;
            if volume.value() > working_set.value() {
                working_set = volume;
            }
        }
        let share = working_set / design.len() as f64;
        let mut time = Seconds(0.0);
        let mut energy = Joules::zero();
        for node in design.nodes() {
            let port = share / node.network_bandwidth;
            if port.value() > time.value() {
                time = port;
            }
            energy += node.idle_power * port;
        }
        TransitionCost { time, energy }
    }
}

impl Estimator for Serving {
    fn name(&self) -> String {
        let base = match self.policy {
            ServingPolicy::Fcfs => "serving".to_string(),
            ServingPolicy::EnergyAware => "serving:energy-aware".to_string(),
            ServingPolicy::JoinShortestQueue => "serving:jsq".to_string(),
            ServingPolicy::PowerOfTwoChoices => "serving:po2".to_string(),
        };
        let inner = self.inner.name();
        if inner == "analytical" {
            base
        } else {
            format!("{base}@{inner}")
        }
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let params = plan.serving.as_ref().ok_or_else(|| {
            CoreError::invalid(format!(
                "plan '{}' carries no serving parameters — wrap the workload in a ServingWorkload",
                plan.label
            ))
        })?;
        if params.templates.is_empty() {
            return Err(CoreError::invalid("serving needs at least one template"));
        }

        if params.pool_concurrency == 0 {
            return Err(CoreError::invalid("pool concurrency must be at least 1"));
        }

        // Price every template on every pool through the inner estimator.
        // A pool that refuses a template (Runtime error: the hash table fits
        // no execution mode there) just cannot serve it. A dedicated n-way
        // pool is priced *at* that concurrency — the template re-runs
        // through the inner estimator with `sweep.concurrency = n` (the
        // ConcurrencySweep axis), so the per-query time reflects measured/
        // analytical n-way contention and the batch energy is split per
        // query. A processor-sharing pool is priced solo: the simulator's
        // rate-sharing models the contention, and pricing it again here
        // would double-count.
        let dedicated_n = if params.processor_sharing {
            1
        } else {
            params.pool_concurrency
        };
        let mut servers = Vec::new();
        let mut pool_ids = Vec::new();
        for (label, ids, spec) in Self::pools(design)? {
            let mut profiles = Vec::with_capacity(params.templates.len());
            for template in &params.templates {
                let mut priced = template.clone();
                priced.sweep = priced.sweep.with_concurrency(dedicated_n);
                match self.inner.estimate(&priced, &spec) {
                    Ok(record) => profiles.push(Some(ServiceProfile {
                        time: record.response_time,
                        energy: record.energy / dedicated_n as f64,
                    })),
                    Err(CoreError::Runtime(_)) => profiles.push(None),
                    Err(err) => return Err(err),
                }
            }
            if profiles.iter().any(Option::is_some) {
                let idle_power = ids
                    .iter()
                    .map(|&id| design.nodes()[id].idle_power)
                    .sum::<Watts>();
                let mut server = ServingServer::new(label, idle_power, profiles)
                    .concurrency_limit(params.pool_concurrency)
                    .nodes(ids.len());
                if params.processor_sharing {
                    server = server.processor_sharing();
                }
                servers.push(server);
                pool_ids.push(ids);
            }
        }
        for (index, template) in params.templates.iter().enumerate() {
            if !servers.iter().any(|s| s.can_serve(index)) {
                return Err(CoreError::Runtime(PStoreError::planning(format!(
                    "template '{}' fits no pool of design {}",
                    template.label,
                    design.label()
                ))));
            }
        }

        // An active fault model rides into the simulator as-is, except that
        // a scale policy carrying no explicit migration cost gets one
        // derived from the design's port-volume model.
        let faults: Option<FaultModel> = params.faults.clone().map(|mut model| {
            if let Some(scale) = &mut model.scale {
                if scale.migration.is_none() {
                    scale.migration = Some(Self::derived_migration_cost(params, design));
                }
            }
            model
        });
        let churned = faults.as_ref().is_some_and(|model| !model.is_inert());
        let config = ServingConfig {
            arrival: params.arrival.clone(),
            duration: params.duration,
            template_theta: params.template_theta,
            queue_capacity: params.queue_capacity,
            max_wait: params.max_wait,
            seed: params.seed,
            service: eedc_dbmsim::ServiceDistribution::Deterministic,
            faults,
        };
        let mut scheduler: Box<dyn Scheduler> = match self.policy {
            ServingPolicy::Fcfs => Box::new(FcfsScheduler),
            ServingPolicy::EnergyAware => Box::new(EnergyAwareScheduler),
            ServingPolicy::JoinShortestQueue => Box::new(JoinShortestQueue),
            ServingPolicy::PowerOfTwoChoices => Box::new(PowerOfTwoChoices),
        };
        let result = simulate_serving(&servers, &config, scheduler.as_mut())?;

        // Per-node shares in cluster node order: each node carries its
        // pool's utilization and an equal split of the pool's energy (pools
        // are homogeneous, so the split is exact under a uniform layout).
        let mut node_utilization = vec![0.0; design.len()];
        let mut node_energy = vec![Joules::zero(); design.len()];
        for (pool, ids) in pool_ids.iter().enumerate() {
            let share = result.server_energy[pool] / ids.len() as f64;
            for &id in ids {
                node_utilization[id] = result.server_utilization(pool);
                node_energy[id] = share;
            }
        }

        let stats = ServingStats {
            scheduler: result.scheduler.clone(),
            arrival: Some(result.arrival.clone()),
            offered_qps: result.offered_qps,
            achieved_qps: result.achieved_qps(),
            arrivals: result.arrivals,
            completed: result.completed,
            dropped: result.dropped,
            timed_out: result.timed_out,
            drop_rate: result.drop_rate(),
            p50: result.p50(),
            p95: result.p95(),
            p99: result.p99(),
            mean_latency: result.mean_latency(),
            mean_wait: result.mean_wait,
            energy_per_query: result.energy_per_query(),
            pool_mean_depth: result.pool_mean_depth.clone(),
            pool_max_queued: result.pool_max_queued.clone(),
            faults: churned.then_some(FaultStats {
                availability: result.availability,
                failures: result.failures,
                killed: result.killed,
                readmitted: result.readmitted,
                scale_out_events: result.scale_out_events,
                scale_in_events: result.scale_in_events,
                fault_downtime: result.fault_downtime,
                overhead_energy: result.overhead_energy,
            }),
        };
        Ok(RunRecord {
            workload: plan.label.clone(),
            estimator: self.name(),
            design: design.label(),
            strategy: plan.strategy,
            mode: if pool_ids.len() > 1 {
                ExecutionMode::Heterogeneous
            } else {
                ExecutionMode::Homogeneous
            },
            concurrency: plan.sweep.concurrency,
            response_time: result.mean_latency(),
            energy: result.energy,
            node_utilization,
            node_energy,
            phases: Vec::new(),
            output_rows: None,
            serving: Some(stats),
            normalized: None,
        })
    }
}

/// One estimator's sweep of one workload plan across the experiment's
/// designs: the uniform records (reference first), the designs the estimator
/// refused as infeasible, and the normalized series the figures plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSeries {
    /// The estimator that produced the series.
    pub estimator: String,
    /// Label of the workload plan.
    pub workload: String,
    /// The join strategy evaluated.
    pub strategy: JoinStrategy,
    /// Records for every feasible design, reference first, each carrying its
    /// normalized point.
    pub records: Vec<RunRecord>,
    /// Designs whose hash table fits no execution mode, with the planner's
    /// reason — accounted rather than silently dropped.
    pub infeasible: Vec<(String, String)>,
    /// The normalized (performance, energy) series relative to the reference
    /// design.
    pub normalized: NormalizedSeries,
}

impl RunSeries {
    /// The record for a labelled design, if it was feasible.
    pub fn record(&self, design: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.design == design)
    }

    /// Reconstruct a series from the JSON shape [`to_json`](Self::to_json)
    /// emits. The normalized series is rebuilt from the records' carried
    /// points (the reference design leads, exactly as the evaluation
    /// protocol wrote them).
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        let records: Vec<RunRecord> = value
            .array_field("records")?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<_, _>>()?;
        let reference = value.str_field("reference")?.to_string();
        let mut normalized = NormalizedSeries::with_reference(reference.clone());
        for record in &records {
            if record.design == reference {
                continue;
            }
            let point = record.normalized.ok_or_else(|| {
                CoreError::invalid(format!(
                    "record '{}' in a serialized series has no normalized point",
                    record.design
                ))
            })?;
            normalized.push(record.design.clone(), point);
        }
        let infeasible = value
            .array_field("infeasible")?
            .iter()
            .map(|entry| {
                Ok((
                    entry.str_field("design")?.to_string(),
                    entry.str_field("reason")?.to_string(),
                ))
            })
            .collect::<Result<_, CoreError>>()?;
        Ok(Self {
            estimator: value.str_field("estimator")?.to_string(),
            workload: value.str_field("workload")?.to_string(),
            strategy: value.str_field("strategy")?.parse()?,
            records,
            infeasible,
            normalized,
        })
    }

    /// Render the series as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("estimator", self.estimator.clone())
            .set("workload", self.workload.clone())
            .set("strategy", self.strategy.to_string())
            .set("reference", self.normalized.reference_label.clone());
        let mut records = JsonValue::array();
        for record in &self.records {
            records.push(record.to_json());
        }
        obj.set("records", records);
        let mut infeasible = JsonValue::array();
        for (design, reason) in &self.infeasible {
            let mut entry = JsonValue::object();
            entry
                .set("design", design.clone())
                .set("reason", reason.clone());
            infeasible.push(entry);
        }
        obj.set("infeasible", infeasible);
        obj
    }
}

/// A full experiment report: one [`RunSeries`] per (estimator × workload
/// plan) pair, in estimator-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// The series, grouped by estimator, then workload plan.
    pub series: Vec<RunSeries>,
}

impl ExperimentReport {
    /// All series produced by the named estimator.
    pub fn by_estimator<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RunSeries> {
        self.series.iter().filter(move |s| s.estimator == name)
    }

    /// The single series for an (estimator, workload) pair, if present.
    pub fn series_for(&self, estimator: &str, workload: &str) -> Option<&RunSeries> {
        self.series
            .iter()
            .find(|s| s.estimator == estimator && s.workload == workload)
    }

    /// Every record across all series.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.series.iter().flat_map(|s| s.records.iter())
    }

    /// Render the report as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        let mut series = JsonValue::array();
        for s in &self.series {
            series.push(s.to_json());
        }
        obj.set("series", series);
        obj
    }

    /// Render the report as an indented JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_pretty()
    }

    /// Write the report as JSON to `path`, creating parent directories as
    /// needed — the first step of the figures pipeline's real serialization.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Reconstruct a report from the JSON shape [`to_json`](Self::to_json)
    /// emits — `from_json(parse(to_json())) == self` for every report the
    /// writer can produce.
    pub fn from_json(value: &JsonValue) -> Result<Self, CoreError> {
        Ok(Self {
            series: value
                .array_field("series")?
                .iter()
                .map(RunSeries::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Read a report back from a JSON file written by
    /// [`write_json`](Self::write_json) — the reader half of the figures
    /// pipeline, for baseline comparisons across runs.
    pub fn read_json(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|err| {
            CoreError::invalid(format!(
                "cannot read report '{}': {err}",
                path.as_ref().display()
            ))
        })?;
        Self::from_json(&JsonValue::parse(&text)?)
    }
}

/// Builder-style experiment runner: any workload, a set of cluster designs,
/// and one or more estimators — the single entry point the paper's
/// comparisons (and every example, bench, and validation test) go through.
///
/// The first design added is the normalization reference; it must be
/// feasible under every estimator. Designs an estimator refuses (hash table
/// fits no execution mode) are recorded per series as infeasible.
pub struct Experiment {
    plans: Vec<WorkloadPlan>,
    designs: Vec<ClusterSpec>,
    estimators: Vec<Box<dyn Estimator>>,
    strategy: Option<JoinStrategy>,
    query: Option<JoinQuerySpec>,
}

impl Experiment {
    /// Start an experiment over a workload's plans.
    pub fn new(workload: &dyn Workload) -> Self {
        Self {
            plans: workload.plans(),
            designs: Vec::new(),
            estimators: Vec::new(),
            strategy: None,
            query: None,
        }
    }

    /// Append another workload's plans to the experiment.
    pub fn workload(mut self, workload: &dyn Workload) -> Self {
        self.plans.extend(workload.plans());
        self
    }

    /// Override the join strategy of every plan.
    pub fn strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Override the query spec the measured runtime executes (the analytical
    /// sweep volumes are left untouched).
    pub fn query(mut self, query: JoinQuerySpec) -> Self {
        self.query = Some(query);
        self
    }

    /// Add one candidate design. The first design added is the
    /// normalization reference.
    pub fn design(mut self, design: ClusterSpec) -> Self {
        self.designs.push(design);
        self
    }

    /// Add candidate designs in order.
    pub fn designs(mut self, designs: impl IntoIterator<Item = ClusterSpec>) -> Self {
        self.designs.extend(designs);
        self
    }

    /// Add an estimator. Estimators run in the order they were added.
    pub fn estimator(mut self, estimator: impl Estimator + 'static) -> Self {
        self.estimators.push(Box::new(estimator));
        self
    }

    /// Run every (estimator × plan) series across the designs.
    pub fn run(&self) -> Result<ExperimentReport, CoreError> {
        if self.plans.is_empty() {
            return Err(CoreError::invalid("experiment has no workload plans"));
        }
        if self.designs.is_empty() {
            return Err(CoreError::invalid("experiment has no designs"));
        }
        if self.estimators.is_empty() {
            return Err(CoreError::invalid("experiment has no estimators"));
        }
        let mut series = Vec::new();
        for estimator in &self.estimators {
            for plan in &self.plans {
                let mut plan = plan.clone();
                if let Some(strategy) = self.strategy {
                    plan.strategy = strategy;
                }
                if let Some(query) = self.query {
                    plan.query = query;
                }
                series.push(evaluate_series(estimator.as_ref(), &plan, &self.designs)?);
            }
        }
        Ok(ExperimentReport { series })
    }
}

/// Evaluate one (estimator, plan) series across `designs`: the first design
/// is the normalization reference and must be feasible; designs the
/// estimator refuses ([`CoreError::Runtime`]) are recorded as infeasible.
/// This is the single normalization/infeasibility protocol shared by
/// [`Experiment::run`] and the Section 6 advisor.
pub(crate) fn evaluate_series(
    estimator: &dyn Estimator,
    plan: &WorkloadPlan,
    designs: &[ClusterSpec],
) -> Result<RunSeries, CoreError> {
    let reference_design = designs
        .first()
        .ok_or_else(|| CoreError::invalid("a series needs at least one design"))?;
    let mut reference = estimator.estimate(plan, reference_design)?;
    let reference_measurement = reference.measurement();
    reference.normalized = Some(NormalizedPoint::reference());
    let mut normalized = NormalizedSeries::with_reference(reference.design.clone());
    let mut records = vec![reference];
    let mut infeasible = Vec::new();
    for design in &designs[1..] {
        match estimator.estimate(plan, design) {
            Ok(mut record) => {
                let point = record
                    .measurement()
                    .normalized_against(&reference_measurement)?;
                record.normalized = Some(point);
                normalized.push(record.design.clone(), point);
                records.push(record);
            }
            Err(CoreError::Runtime(err)) => {
                infeasible.push((design.label(), err.to_string()));
            }
            Err(err) => return Err(err),
        }
    }
    Ok(RunSeries {
        estimator: estimator.name(),
        workload: plan.label.clone(),
        strategy: plan.strategy,
        records,
        infeasible,
        normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SweepJoin;
    use crate::workload::{ConcurrencySweep, ProfiledQuery, ServingWorkload, SkewedJoin};
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};

    fn sweep() -> SweepJoin {
        SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle())
    }

    fn homogeneous(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()
    }

    #[test]
    fn analytical_series_normalizes_against_the_first_design() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8), homogeneous(4)])
            .estimator(Analytical)
            .run()
            .unwrap();
        assert_eq!(report.series.len(), 1);
        let series = &report.series[0];
        assert_eq!(series.estimator, "analytical");
        assert_eq!(series.records.len(), 3);
        assert_eq!(series.records[0].design, "16B,0W");
        assert_eq!(
            series.records[0].normalized,
            Some(NormalizedPoint::reference())
        );
        // Smaller clusters are slower: normalized performance below 1.
        let p8 = series.record("8B,0W").unwrap().normalized.unwrap();
        assert!(p8.performance < 1.0);
        // The normalized series carries the same points.
        assert_eq!(series.normalized.points().len(), 3);
        // Phase breakdowns and per-node vectors are populated.
        let r = series.record("4B,0W").unwrap();
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.node_utilization.len(), 4);
        assert_eq!(r.node_energy.len(), 4);
        let node_total: f64 = r.node_energy.iter().map(|e| e.value()).sum();
        assert!((node_total - r.energy.value()).abs() < 1e-6 * node_total);
        assert!(r.edp() > 0.0);
        assert_eq!(r.output_rows, None);
    }

    #[test]
    fn infeasible_designs_are_recorded_not_fatal() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            ])
            .estimator(Analytical)
            .run()
            .unwrap();
        let series = &report.series[0];
        assert_eq!(series.records.len(), 1);
        assert_eq!(series.infeasible.len(), 1);
        assert_eq!(series.infeasible[0].0, "0B,4W");
        assert!(series.infeasible[0].1.contains("does not fit"));
    }

    #[test]
    fn estimators_and_plans_cross_product_into_series() {
        let workload = ConcurrencySweep::new(sweep(), [1, 2]);
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8)])
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        // 2 estimators x 2 concurrency levels.
        assert_eq!(report.series.len(), 4);
        assert_eq!(report.by_estimator("analytical").count(), 2);
        assert_eq!(report.by_estimator("behavioural").count(), 2);
        assert_eq!(report.records().count(), 8);
        // Higher concurrency is slower under both lenses.
        for estimator in ["analytical", "behavioural"] {
            let series: Vec<_> = report.by_estimator(estimator).collect();
            let t1 = series[0].records[0].response_time;
            let t2 = series[1].records[0].response_time;
            assert!(t2 > t1, "{estimator}: x2 batch not slower");
        }
    }

    #[test]
    fn behavioural_tracks_analytical_at_the_reference_configuration() {
        // For a profile-less plan, the behavioural estimator derives its
        // profile and anchor from the analytical model at the 8-node
        // reference — so at exactly 8 nodes the two lenses coincide on
        // response time.
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([homogeneous(8), homogeneous(16), homogeneous(4)])
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let analytical = &report.series[0].records[0];
        let behavioural = &report.series[1].records[0];
        assert!(
            (analytical.response_time.value() - behavioural.response_time.value()).abs()
                < 1e-6 * analytical.response_time.value()
        );
        // Away from the reference the lenses legitimately diverge — and the
        // divergence is the paper's Section 3 point. The analytical model
        // sees per-port shuffle volume shrink as nodes are added, so 16
        // nodes beat 8; the behavioural law pins repartition-bound work
        // (the dual-shuffle sweep is fully network-bound, so its derived
        // repartition fraction is 1) and predicts no speedup at all.
        let a16 = report.series[0].record("16B,0W").unwrap();
        let b16 = report.series[1].record("16B,0W").unwrap();
        assert!(a16.response_time < analytical.response_time);
        assert!(
            (b16.response_time.value() - behavioural.response_time.value()).abs()
                < 1e-9 * behavioural.response_time.value()
        );
        // Shrinking the cluster never speeds the law up.
        let b4 = report.series[1].record("4B,0W").unwrap();
        assert!(b4.response_time.value() >= behavioural.response_time.value() - 1e-9);
    }

    #[test]
    fn profiled_queries_flow_through_the_behavioural_estimator() {
        let q12 = ProfiledQuery::vertica_sf1000(eedc_tpch::QueryId::Q12);
        let report = Experiment::new(&q12)
            .designs([homogeneous(8), homogeneous(16), homogeneous(32)])
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let series = &report.series[0];
        // Unit anchor: the reference record reads exactly 1.0 s.
        assert!((series.records[0].response_time.value() - 1.0).abs() < 1e-12);
        // Q12 flattens out: 32 nodes is barely faster than 16.
        let t16 = series.record("16B,0W").unwrap().response_time.value();
        let t32 = series.record("32B,0W").unwrap().response_time.value();
        assert!(t16 < 1.0 && t32 < t16);
        assert!(t32 > 0.48, "t32 {t32} under the scaling floor");
        // ... while energy rises (the energy-proportionality gap).
        let e = |d: &str| series.record(d).unwrap().energy.value();
        assert!(e("32B,0W") > e("16B,0W"));
        assert!(e("16B,0W") > e("8B,0W"));
        // Behavioural records carry no phase breakdown.
        assert!(series.records[0].phases.is_empty());
    }

    #[test]
    fn skewed_workloads_run_hotter_than_uniform_under_the_model() {
        let uniform = sweep();
        let skewed = SkewedJoin::new(
            uniform,
            eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            },
        );
        let designs = [homogeneous(16)];
        let u = Experiment::new(&uniform)
            .designs(designs.clone())
            .estimator(Analytical)
            .run()
            .unwrap();
        let s = Experiment::new(&skewed)
            .designs(designs)
            .estimator(Analytical)
            .run()
            .unwrap();
        let ur = &u.series[0].records[0];
        let sr = &s.series[0].records[0];
        assert!(sr.response_time > ur.response_time);
        let hot = |r: &RunRecord| {
            r.node_energy
                .iter()
                .map(|e| e.value())
                .fold(0.0_f64, f64::max)
        };
        assert!(hot(sr) > hot(ur));
    }

    #[test]
    fn behavioural_and_analytical_agree_on_feasibility() {
        // Feasibility is a property of the design, not of the behavioural
        // estimator's synthetic derivation reference: 16 laptops CAN hold
        // the 70 GB dual-shuffle hash table (4.4 GB per node against 6.4 GB
        // usable) even though 8 of them cannot, while 4 laptops cannot hold
        // it in any mode. Both lenses must classify identically.
        let workload = sweep();
        let designs = [
            homogeneous(16),
            ClusterSpec::homogeneous(laptop_b(), 16).unwrap(),
            ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
        ];
        let report = Experiment::new(&workload)
            .designs(designs)
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let analytical = &report.series[0];
        let behavioural = &report.series[1];
        for series in [analytical, behavioural] {
            assert!(
                series.record("0B,16W").is_some(),
                "{}: feasible all-Wimpy design dropped",
                series.estimator
            );
            assert_eq!(series.infeasible.len(), 1, "{}", series.estimator);
            assert_eq!(series.infeasible[0].0, "0B,4W", "{}", series.estimator);
        }
        // The fallback derivation (8 laptops cannot plan, so the design
        // itself anchors it) must express the anchor in reference terms:
        // round-tripping through rel(16) recovers the analytical time at
        // the design, not a mis-scaled multiple of it.
        let a = analytical.record("0B,16W").unwrap();
        let b = behavioural.record("0B,16W").unwrap();
        assert!(
            (a.response_time.value() - b.response_time.value()).abs()
                < 1e-9 * a.response_time.value(),
            "fallback anchor mis-scaled: analytical {} vs behavioural {}",
            a.response_time.value(),
            b.response_time.value(),
        );
    }

    #[test]
    fn measured_plan_skew_is_authoritative_over_options() {
        // The plan is the single source of truth for join-key skew: a
        // skew-free plan run through a Measured estimator whose options
        // carry a heavy skew must behave exactly like a skew-free run, so
        // measured and analytical lenses always see the same workload.
        let small = RunOptions {
            engine_scale: eedc_tpch::ScaleFactor(0.001),
            ..RunOptions::default()
        };
        let skew_options = RunOptions {
            skew: Some(eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            }),
            ..small
        };
        let plan = &sweep().plans()[0];
        let design = homogeneous(4);
        let plain = Measured::new(small).estimate(plan, &design).unwrap();
        let overridden = Measured::new(skew_options).estimate(plan, &design).unwrap();
        assert_eq!(plain.measurement(), overridden.measurement());
    }

    #[test]
    fn strategy_and_query_overrides_patch_every_plan() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .strategy(JoinStrategy::PrePartitioned)
            .designs([homogeneous(8)])
            .estimator(Analytical)
            .run()
            .unwrap();
        assert_eq!(report.series[0].strategy, JoinStrategy::PrePartitioned);
        assert_eq!(
            report.series[0].records[0].phases[0].bytes_over_network,
            Megabytes::zero()
        );
    }

    #[test]
    fn dyn_estimators_are_first_class() {
        // Object-safety smoke: estimators as trait objects, mixed in one
        // collection, driven through the same API.
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(Analytical),
            Box::new(Behavioural::default()),
            Box::new(Measured::default()),
        ];
        let plan = &sweep().plans()[0];
        let design = homogeneous(4);
        for estimator in &estimators {
            let record = estimator.estimate(plan, &design).unwrap();
            assert_eq!(record.estimator, estimator.name());
            assert!(record.response_time.value() > 0.0);
            assert!(record.energy.value() > 0.0);
        }
        // And a boxed estimator slots into the builder unchanged.
        let boxed: Box<dyn Estimator> = Box::new(Analytical);
        let report = Experiment::new(&sweep())
            .designs([homogeneous(8)])
            .estimator(boxed)
            .run()
            .unwrap();
        assert_eq!(report.series[0].estimator, "analytical");
    }

    #[test]
    fn traced_pstore_engine_reproduces_the_analytical_lens() {
        // The synthesized trace carries exactly the analytical model's
        // per-node utilizations and phase durations, and the pipelined
        // P-store engine is the identity transformation — so replaying it
        // must land on the analytical numbers to float precision. This pins
        // the busy-share round trip through the whole stack.
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8), homogeneous(4)])
            .estimator(Analytical)
            .estimator(Traced::pstore())
            .run()
            .unwrap();
        let analytical = &report.series[0];
        let traced = &report.series[1];
        assert_eq!(traced.estimator, "traced");
        for (a, t) in analytical.records.iter().zip(&traced.records) {
            assert_eq!(a.design, t.design);
            assert!(
                (a.response_time.value() - t.response_time.value()).abs()
                    < 1e-9 * a.response_time.value(),
                "{}: time diverged",
                a.design
            );
            assert!(
                (a.energy.value() - t.energy.value()).abs() < 1e-9 * a.energy.value(),
                "{}: energy diverged",
                a.design
            );
            // Per-node vectors line up too.
            for (au, tu) in a.node_utilization.iter().zip(&t.node_utilization) {
                assert!((au - tu).abs() < 1e-9);
            }
            assert_eq!(t.output_rows, None);
        }
    }

    #[test]
    fn traced_lenses_agree_with_the_other_lenses_on_feasibility() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            ])
            .estimator(Traced::pstore())
            .estimator(Traced::dbms_x())
            .run()
            .unwrap();
        for series in &report.series {
            assert_eq!(series.records.len(), 1, "{}", series.estimator);
            assert_eq!(series.infeasible.len(), 1, "{}", series.estimator);
            assert_eq!(series.infeasible[0].0, "0B,4W");
        }
        assert_eq!(report.series[1].estimator, "traced:dbms-x");
    }

    #[test]
    fn traced_custom_engines_are_first_class() {
        // A restart-only engine (no staging): the record costs exactly
        // (1 + restarts × redo) times the pipelined engine.
        let engine = eedc_dbmsim::EngineBehaviour::new(
            "flaky",
            false,
            eedc_dbmsim::RestartPolicy::new(2, 0.25).unwrap(),
        )
        .unwrap();
        let custom = Traced::with_engine(engine);
        assert_eq!(custom.name(), "traced:flaky");
        assert!(!custom.engine().disk_staging);
        let plan = &sweep().plans()[0];
        let design = homogeneous(8);
        let base = Traced::pstore().estimate(plan, &design).unwrap();
        let flaky = custom.estimate(plan, &design).unwrap();
        let ratio = flaky.response_time.value() / base.response_time.value();
        assert!((ratio - 1.5).abs() < 1e-9, "ratio {ratio}");
        let ratio = flaky.energy.value() / base.energy.value();
        assert!((ratio - 1.5).abs() < 1e-9, "energy ratio {ratio}");
    }

    #[test]
    fn skewed_synthesized_traces_carry_per_node_port_activity() {
        // The closed form knows each node's true egress/ingress volumes, so
        // the synthesized trace must charge every port its own activity —
        // not the hot port's. Observable through the record: the traced
        // phase's port-volume total must sit between the analytical egress
        // total and strictly below nodes × hot-port volume (what a
        // phase-level synthesis would charge under skew).
        let plan = &SkewedJoin::new(
            SweepJoin::section_5_4(JoinQuerySpec::new(0.2, 0.5)),
            eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            },
        )
        .plans()[0];
        let design = homogeneous(16);
        let traced = Traced::pstore().estimate(plan, &design).unwrap();
        let analytical = Analytical.estimate(plan, &design).unwrap();
        let bandwidth = cluster_v_node().network_bandwidth.value();
        for (t, a) in traced.phases.iter().zip(&analytical.phases) {
            let egress_total = a.bytes_over_network.value();
            let hot_port_total = 16.0 * a.network_time.value() * bandwidth;
            assert!(
                t.bytes_over_network.value() >= egress_total - 1e-6,
                "{}: port total below the egress total",
                t.label
            );
            assert!(
                t.bytes_over_network.value() < hot_port_total - 1e-6,
                "{}: every port charged the hot-port volume",
                t.label
            );
        }
        // The per-node refinement does not disturb the time/energy identity
        // with the analytical lens.
        assert!(
            (traced.energy.value() - analytical.energy.value()).abs()
                < 1e-9 * analytical.energy.value()
        );
    }

    #[test]
    fn measured_cache_deduplicates_cluster_loads() {
        // A concurrency sweep is `levels` plans over the same designs: the
        // cluster for each (design, options) pair must be generated once,
        // not once per plan.
        let options = RunOptions {
            engine_scale: eedc_tpch::ScaleFactor(0.001),
            ..RunOptions::default()
        };
        let measured = Measured::new(options);
        assert_eq!(measured.cached_clusters(), 0);
        let workload = ConcurrencySweep::new(sweep(), [1, 2, 4]);
        let designs = [homogeneous(4), homogeneous(2)];
        let report = Experiment::new(&workload)
            .designs(designs.clone())
            .estimator(measured.clone())
            .run()
            .unwrap();
        assert_eq!(report.series.len(), 3);
        // The estimator handed to the experiment was a clone sharing no
        // state; measure on a fresh instance driven directly instead.
        let direct = Measured::new(options);
        for plan in workload.plans() {
            for design in &designs {
                direct.estimate(&plan, design).unwrap();
            }
        }
        assert_eq!(
            direct.cached_clusters(),
            2,
            "3 plans x 2 designs -> 2 loads"
        );
        // A skewed plan patches the effective options and must key its own
        // cluster rather than reusing an unskewed one.
        let skewed = SkewedJoin::new(
            sweep(),
            eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            },
        );
        direct.estimate(&skewed.plans()[0], &designs[0]).unwrap();
        assert_eq!(direct.cached_clusters(), 3);
        // Cache hits return the identical cluster: re-estimating changes
        // nothing and the records stay engine-verified.
        let again = direct.estimate(&workload.plans()[0], &designs[0]).unwrap();
        assert_eq!(direct.cached_clusters(), 3);
        assert!(again.output_rows.unwrap() > 0);
        // Equality ignores the cache.
        assert_eq!(direct, Measured::new(options));
    }

    #[test]
    fn empty_experiments_are_invalid() {
        let workload = sweep();
        assert!(Experiment::new(&workload)
            .estimator(Analytical)
            .run()
            .is_err());
        assert!(Experiment::new(&workload)
            .designs([homogeneous(4)])
            .run()
            .is_err());
    }

    #[test]
    fn reports_round_trip_through_the_json_reader() {
        // Two estimators, an infeasible design, phase breakdowns, normalized
        // points — everything the writer can emit must come back bit-equal,
        // Display-formatted floats round-trip exactly in Rust.
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                homogeneous(8),
                ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            ])
            .estimator(Analytical)
            .estimator(Traced::dbms_x())
            .run()
            .unwrap();
        let parsed = JsonValue::parse(&report.to_json_string()).unwrap();
        let restored = ExperimentReport::from_json(&parsed).unwrap();
        assert_eq!(restored, report);
        // And through the file-based path.
        let dir = std::env::temp_dir().join("eedc-report-roundtrip-test");
        let path = dir.join("report.json");
        report.write_json(&path).unwrap();
        assert_eq!(ExperimentReport::read_json(&path).unwrap(), report);
        std::fs::remove_dir_all(&dir).ok();
        // Shape errors surface as errors, not panics.
        assert!(ExperimentReport::read_json(dir.join("missing.json")).is_err());
        assert!(ExperimentReport::from_json(&JsonValue::object()).is_err());
        let mut truncated = JsonValue::object();
        truncated.set("series", vec![0.0]);
        assert!(ExperimentReport::from_json(&truncated).is_err());
    }

    #[test]
    fn serving_tail_latency_grows_strictly_with_offered_load() {
        // A single 4-node design served at 30/60/90% of its analytical
        // service rate: queueing theory says the tail must stretch as the
        // load approaches saturation, and the simulator must reproduce it.
        let design = homogeneous(4);
        let service_time = Analytical
            .estimate(&sweep().plans()[0], &design)
            .unwrap()
            .response_time
            .value();
        let mu = 1.0 / service_time;
        let window = Seconds(3_000.0 * service_time);
        let workload = ServingWorkload::new(&sweep(), mu * 0.3, window, 77).qps_sweep([
            mu * 0.3,
            mu * 0.6,
            mu * 0.9,
        ]);
        let report = Experiment::new(&workload)
            .designs([design])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        assert_eq!(report.series.len(), 3, "one series per offered QPS");
        let stats: Vec<&ServingStats> = report
            .series
            .iter()
            .map(|s| s.records[0].serving.as_ref().unwrap())
            .collect();
        for s in &stats {
            assert!(s.completed > 500, "enough arrivals to trust the tail");
            assert_eq!(s.dropped + s.timed_out, 0);
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
            assert!(s.energy_per_query.value() > 0.0);
        }
        assert!(
            stats[0].p99 < stats[1].p99 && stats[1].p99 < stats[2].p99,
            "p99 must grow strictly with offered load: {:?}",
            stats.iter().map(|s| s.p99).collect::<Vec<_>>()
        );
        // The mean service rate bounds achieved throughput from above.
        assert!(stats[2].achieved_qps <= mu * 1.01);
    }

    #[test]
    fn serving_places_across_beefy_and_wimpy_pools() {
        // A join small enough that the Wimpy pool can serve it too.
        let mut small = sweep();
        small.build_bytes = Megabytes(2_000.0);
        small.probe_bytes = Megabytes(8_000.0);
        let design = ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 4).unwrap();
        let beefy_pool = ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap();
        let wimpy_pool = ClusterSpec::homogeneous(laptop_b(), 4).unwrap();
        let plan = &small.plans()[0];
        let beefy_energy = Analytical.estimate(plan, &beefy_pool).unwrap().energy;
        let wimpy_energy = Analytical.estimate(plan, &wimpy_pool).unwrap().energy;
        // Load light enough that the preferred pool is almost always idle.
        let slowest = Analytical
            .estimate(plan, &wimpy_pool)
            .unwrap()
            .response_time
            .value()
            .max(
                Analytical
                    .estimate(plan, &beefy_pool)
                    .unwrap()
                    .response_time
                    .value(),
            );
        let qps = 0.05 / slowest;
        let workload = ServingWorkload::new(&small, qps, Seconds(2_000.0 * slowest), 5);
        let report = Experiment::new(&workload)
            .designs([design])
            .estimator(Serving::fcfs())
            .estimator(Serving::energy_aware())
            .run()
            .unwrap();
        let fcfs = &report.series[0].records[0];
        let aware = &report.series[1].records[0];
        assert_eq!(fcfs.estimator, "serving");
        assert_eq!(aware.estimator, "serving:energy-aware");
        assert_eq!(fcfs.mode, ExecutionMode::Heterogeneous);
        assert_eq!(fcfs.node_utilization.len(), 8);
        assert!(fcfs.serving.as_ref().unwrap().completed > 50);
        // FCFS takes the first capable pool — the Beefy nodes (ids 0..4).
        assert!(fcfs.node_utilization[0] > fcfs.node_utilization[4] * 2.0);
        // The energy-aware placer routes to whichever pool is cheaper.
        let (cheap, pricey) = if wimpy_energy < beefy_energy {
            (4, 0)
        } else {
            (0, 4)
        };
        assert!(
            aware.node_utilization[cheap] > aware.node_utilization[pricey] * 2.0,
            "energy-aware must prefer the cheaper pool ({:?})",
            aware.node_utilization
        );
        // Per-node energies cover every node (idle power never reads zero)
        // and sum to the record total.
        assert!(aware.node_energy.iter().all(|e| e.value() > 0.0));
        let total: f64 = aware.node_energy.iter().map(|e| e.value()).sum();
        assert!((total - aware.energy.value()).abs() < 1e-6 * total);
    }

    #[test]
    fn serving_requires_params_and_records_infeasible_designs() {
        // A plan without serving parameters is a caller error, not an
        // infeasible design.
        let bare = sweep().plans().remove(0);
        let err = Serving::fcfs()
            .estimate(&bare, &homogeneous(4))
            .unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)), "{err}");
        // A design where the big join fits no pool is recorded infeasible,
        // exactly like the other lenses.
        let workload = ServingWorkload::new(&sweep(), 0.001, Seconds(10_000.0), 9);
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            ])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let series = &report.series[0];
        assert_eq!(series.records.len(), 1);
        assert_eq!(series.infeasible.len(), 1);
        assert_eq!(series.infeasible[0].0, "0B,4W");
        assert!(series.infeasible[0].1.contains("fits no pool"));
    }

    #[test]
    fn serving_records_round_trip_and_old_reports_stay_byte_compatible() {
        // New serving fields round-trip through the JSON reader.
        let workload = ServingWorkload::new(&sweep(), 0.002, Seconds(50_000.0), 31);
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8)])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let json = report.to_json_string();
        assert!(json.contains("\"serving\""), "{json}");
        assert!(json.contains("\"p99_s\""));
        assert!(json.contains("\"drop_rate\""));
        assert!(json.contains("\"energy_per_query_j\""));
        let restored = ExperimentReport::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(restored, report);
        assert_eq!(
            restored.to_json_string(),
            json,
            "bit-equal re-serialization"
        );
        // Reports written before the serving lens carry no "serving" key;
        // they parse to None and re-serialize byte-identically.
        let old_report = Experiment::new(&sweep())
            .designs([homogeneous(16), homogeneous(8)])
            .estimator(Analytical)
            .run()
            .unwrap();
        let old_json = old_report.to_json_string();
        assert!(
            !old_json.contains("\"serving\""),
            "non-serving records omit the key"
        );
        let old_restored =
            ExperimentReport::from_json(&JsonValue::parse(&old_json).unwrap()).unwrap();
        assert!(old_restored
            .records()
            .all(|record| record.serving.is_none()));
        assert_eq!(old_restored.to_json_string(), old_json, "byte-compatible");
    }

    #[test]
    fn serving_stats_new_keys_round_trip_and_old_stats_stay_byte_compatible() {
        // New runs emit the PR 9 keys and they round-trip.
        let workload = ServingWorkload::new(&sweep(), 0.002, Seconds(50_000.0), 31);
        let report = Experiment::new(&workload)
            .designs([homogeneous(16)])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let json = report.to_json_string();
        assert!(json.contains("\"arrival\""), "{json}");
        assert!(json.contains("\"pool_mean_depth\""));
        assert!(json.contains("\"pool_max_queued\""));
        let stats = report.series[0].records[0].serving.as_ref().unwrap();
        assert_eq!(stats.arrival.as_deref(), Some("poisson"));
        assert_eq!(stats.pool_mean_depth.len(), 1);
        assert_eq!(stats.pool_max_queued.len(), 1);
        let back = ServingStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(&back, stats);

        // A ServingStats written before PR 9 carries none of the new keys;
        // it parses to None/empty and re-writes byte-identically (the same
        // contract the PR 7 "serving key omitted" test pins one level up).
        let mut old = JsonValue::object();
        old.set("scheduler", "fcfs")
            .set("offered_qps", 0.5)
            .set("achieved_qps", 0.5)
            .set("arrivals", 10usize)
            .set("completed", 10usize)
            .set("dropped", 0usize)
            .set("timed_out", 0usize)
            .set("drop_rate", 0.0)
            .set("p50_s", 1.0)
            .set("p95_s", 2.0)
            .set("p99_s", 3.0)
            .set("mean_latency_s", 1.2)
            .set("mean_wait_s", 0.2)
            .set("energy_per_query_j", 42.0);
        let old_json = old.to_json_pretty();
        let restored = ServingStats::from_json(&old).unwrap();
        assert_eq!(restored.arrival, None);
        assert!(restored.pool_mean_depth.is_empty());
        assert!(restored.pool_max_queued.is_empty());
        assert_eq!(
            restored.to_json().to_json_pretty(),
            old_json,
            "pre-PR 9 serving stats re-serialize byte-identically"
        );
    }

    #[test]
    fn serving_lens_reports_fault_stats_and_inert_models_stay_byte_compatible() {
        use eedc_dbmsim::FaultModel;

        // One arrival at t = 0, a scripted outage halfway through its
        // service: the query is killed, replayed, and the record's nested
        // fault stats account for the lost pool-time.
        let design = homogeneous(16);
        let solo = Analytical
            .estimate(&sweep().plans()[0], &design)
            .unwrap()
            .response_time
            .value();
        let window = Seconds(20.0 * solo);
        let model =
            FaultModel::scripted(Vec::new()).outage(0, Seconds(0.5 * solo), Seconds(2.0 * solo));
        let churned = ServingWorkload::new(&sweep(), 1.0, window, 31)
            .trace_arrivals([Seconds(0.0)])
            .with_faults(model);
        let report = Experiment::new(&churned)
            .designs([design.clone()])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let stats = report.series[0].records[0].serving.as_ref().unwrap();
        let faults = stats
            .faults
            .as_ref()
            .expect("a churned run reports fault stats");
        assert_eq!(faults.failures, 1);
        assert_eq!(faults.killed, 1);
        assert_eq!(faults.readmitted, 1);
        assert_eq!(stats.completed, 1, "the replayed query still completes");
        assert!(
            faults.availability > 0.0 && faults.availability < 1.0,
            "outage downtime must dent availability: {}",
            faults.availability
        );
        assert!(faults.fault_downtime.value() > 0.0);
        // The nested "faults" object round-trips bit-for-bit.
        let json = report.to_json_string();
        assert!(json.contains("\"faults\""), "{json}");
        assert!(json.contains("\"availability\""), "{json}");
        let restored = ExperimentReport::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(restored, report);
        assert_eq!(restored.to_json_string(), json, "bit-equal re-write");

        // An inert model is invisible: the whole report — including its
        // JSON bytes — matches a fault-free run, and the "faults" key is
        // never emitted.
        let bare = ServingWorkload::new(&sweep(), 0.002, Seconds(50_000.0), 31);
        let inert = ServingWorkload::new(&sweep(), 0.002, Seconds(50_000.0), 31)
            .with_faults(FaultModel::new(0.0));
        let run = |workload: &ServingWorkload| {
            Experiment::new(workload)
                .designs([design.clone()])
                .estimator(Serving::fcfs())
                .run()
                .unwrap()
        };
        let bare_json = run(&bare).to_json_string();
        assert_eq!(bare_json, run(&inert).to_json_string());
        assert!(!bare_json.contains("\"faults\""), "inert runs omit the key");
    }

    #[test]
    fn serving_lens_derives_migration_cost_and_parks_idle_pools() {
        use eedc_dbmsim::{FaultModel, ScalePolicy};

        // A two-pool heterogeneous design under near-zero load with a scale
        // policy that carries no explicit migration cost: the lens derives
        // one from the port-volume model, and the elastic policy parks the
        // idle pool — visible as scale-in events and a cheaper run.
        let mut small = sweep();
        small.build_bytes = Megabytes(2_000.0);
        small.probe_bytes = Megabytes(8_000.0);
        let design = ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 4).unwrap();
        let solo = Analytical
            .estimate(
                &small.plans()[0],
                &ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            )
            .unwrap()
            .response_time
            .value();
        let window = Seconds(400.0 * solo);
        let base = ServingWorkload::new(&small, 0.01 / solo, window, 13).queue_capacity(256);
        let elastic = base
            .clone()
            .with_faults(FaultModel::new(0.0).scale(ScalePolicy::new(8, 1, Seconds(solo))));
        let run = |workload: &ServingWorkload| {
            Experiment::new(workload)
                .designs([design.clone()])
                .estimator(Serving::fcfs())
                .run()
                .unwrap()
        };
        let still = run(&base);
        let scaled = run(&elastic);
        let record = &scaled.series[0].records[0];
        let faults = record.serving.as_ref().unwrap().faults.as_ref().unwrap();
        assert!(faults.scale_in_events > 0, "an idle pool must park");
        assert_eq!(faults.failures, 0);
        assert_eq!(
            faults.availability, 1.0,
            "deliberate parking is not downtime"
        );
        assert!(
            record.energy < still.series[0].records[0].energy,
            "parking an idle pool must save energy"
        );
    }

    #[test]
    fn serving_prices_pools_through_the_concurrency_sweep() {
        // A 4-way dedicated pool is priced at concurrency 4: with
        // deterministic service and near-zero load, every query's latency is
        // the *4-way* analytical response time, not the solo one.
        let design = homogeneous(8);
        let plan = sweep().plans().remove(0);
        let solo = Analytical.estimate(&plan, &design).unwrap();
        let mut four_way = plan.clone();
        four_way.sweep = four_way.sweep.with_concurrency(4);
        let batch = Analytical.estimate(&four_way, &design).unwrap();
        assert!(
            batch.response_time > solo.response_time,
            "4 concurrent queries must take longer than one"
        );

        let window = Seconds(2_000.0 * solo.response_time.value());
        let qps = 0.05 / solo.response_time.value();
        let pooled = ServingWorkload::new(&sweep(), qps, window, 7).pool_concurrency(4);
        let report = Experiment::new(&pooled)
            .designs([design.clone()])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let record = &report.series[0].records[0];
        let stats = record.serving.as_ref().unwrap();
        assert!(stats.completed > 50);
        assert_eq!(stats.dropped + stats.timed_out, 0);
        // Light load: nothing queues, so p50 is exactly one service time —
        // the re-priced 4-way time.
        assert!(
            (stats.p50.value() - batch.response_time.value()).abs()
                < 1e-9 * batch.response_time.value(),
            "p50 {} vs 4-way response time {}",
            stats.p50.value(),
            batch.response_time.value()
        );
        // And the per-query energy reflects the batch split: query energy
        // alone is energy/4 per completion, so total per-query energy stays
        // below one solo run plus the idle share.
        assert!(stats.energy_per_query.value() > 0.0);

        // A processor-sharing pool is priced solo: at near-zero load each
        // query runs alone at the solo rate.
        let shared = ServingWorkload::new(&sweep(), qps, window, 7)
            .pool_concurrency(4)
            .processor_sharing();
        let report = Experiment::new(&shared)
            .designs([design])
            .estimator(Serving::fcfs())
            .run()
            .unwrap();
        let ps_stats = report.series[0].records[0].serving.as_ref().unwrap();
        assert!(
            (ps_stats.p50.value() - solo.response_time.value()).abs()
                < 1e-9 * solo.response_time.value(),
            "PS p50 {} vs solo response time {}",
            ps_stats.p50.value(),
            solo.response_time.value()
        );
        // Zero pool concurrency is a caller error.
        let mut bad = pooled.plans().remove(0);
        bad.serving.as_mut().unwrap().pool_concurrency = 0;
        assert!(Serving::fcfs().estimate(&bad, &homogeneous(8)).is_err());
    }

    #[test]
    fn serving_jsq_and_po2_lenses_run_deterministically() {
        let mut small = sweep();
        small.build_bytes = Megabytes(2_000.0);
        small.probe_bytes = Megabytes(8_000.0);
        let design = ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 4).unwrap();
        let solo = Analytical
            .estimate(
                &small.plans()[0],
                &ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            )
            .unwrap()
            .response_time
            .value();
        let workload =
            ServingWorkload::new(&small, 0.8 / solo, Seconds(800.0 * solo), 13).queue_capacity(256);
        let run = || {
            Experiment::new(&workload)
                .designs([design.clone()])
                .estimator(Serving::jsq())
                .estimator(Serving::power_of_two())
                .run()
                .unwrap()
        };
        let report = run();
        let jsq = &report.series[0].records[0];
        let po2 = &report.series[1].records[0];
        assert_eq!(jsq.estimator, "serving:jsq");
        assert_eq!(po2.estimator, "serving:po2");
        let jsq_stats = jsq.serving.as_ref().unwrap();
        let po2_stats = po2.serving.as_ref().unwrap();
        assert_eq!(jsq_stats.scheduler, "jsq");
        assert_eq!(po2_stats.scheduler, "po2");
        // Queue-depth accounting covers both pools of the design.
        assert_eq!(jsq_stats.pool_mean_depth.len(), 2);
        assert!(jsq_stats.pool_mean_depth.iter().all(|&d| d > 0.0));
        assert_eq!(po2_stats.pool_max_queued.len(), 2);
        assert!(jsq_stats.completed > 200);
        assert!(po2_stats.completed > 200);
        // The po2 probes draw from the seeded kernel RNG: bit-identical.
        assert_eq!(report.to_json_string(), run().to_json_string());
    }

    #[test]
    fn reports_serialize_to_json() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                homogeneous(8),
                ClusterSpec::homogeneous(laptop_b(), 2).unwrap(),
            ])
            .estimator(Analytical)
            .run()
            .unwrap();
        let json = report.to_json_string();
        assert!(json.contains("\"estimator\": \"analytical\""), "{json}");
        assert!(json.contains("\"design\": \"16B,0W\""));
        assert!(json.contains("\"normalized\""));
        assert!(json.contains("\"infeasible\""));
        assert!(json.contains("\"bottleneck\": \"network\""));
        // And lands on disk through the writer.
        let dir = std::env::temp_dir().join("eedc-experiment-test");
        let path = dir.join("nested").join("report.json");
        report.write_json(&path).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, json);
        std::fs::remove_dir_all(&dir).ok();
    }
}
