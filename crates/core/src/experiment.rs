//! The estimator side of the experiment API: *how* a workload is evaluated,
//! and the [`Experiment`] runner that sweeps any [`Workload`] across cluster
//! designs under one or more estimators.
//!
//! The paper's whole argument runs on comparing the *same* workload through
//! three lenses:
//!
//! * [`Measured`] — the P-store cluster runtime of Section 5
//!   (engine-scale correctness, nominal-scale time/energy),
//! * [`Analytical`] — the closed-form Section 5.4 design model,
//! * [`Behavioural`] — the first-order Section 3 scaling law.
//!
//! Every lens implements [`Estimator`] and yields the same [`RunRecord`]
//! shape — response time, energy, EDP, per-node utilization and energy, and
//! a normalized-vs-reference point — so examples, benches, validation tests
//! and the figures pipeline stop hand-wiring the comparison. Records
//! serialize to JSON through [`crate::json`] for the figures pipeline.
//!
//! ```no_run
//! use eedc_core::{Analytical, Behavioural, Experiment, SweepJoin};
//! use eedc_pstore::{ClusterSpec, JoinQuerySpec};
//! use eedc_simkit::catalog::cluster_v_node;
//!
//! let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
//! let report = Experiment::new(&workload)
//!     .designs((1..=4).map(|i| ClusterSpec::homogeneous(cluster_v_node(), 4 * i).unwrap()))
//!     .estimator(Analytical)
//!     .estimator(Behavioural::default())
//!     .run()
//!     .unwrap();
//! for series in &report.series {
//!     for record in &series.records {
//!         println!("{}: {:?}", record.design, record.normalized);
//!     }
//! }
//! ```

use crate::error::CoreError;
use crate::json::JsonValue;
use crate::model::{AnalyticalModel, ModelPrediction, PhasePrediction};
use crate::workload::{Workload, WorkloadPlan};
use eedc_dbmsim::BehaviouralModel;
use eedc_pstore::stats::{Bottleneck, ExecutionMode, PhaseStats, QueryExecution};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::metrics::{Measurement, NormalizedPoint, NormalizedSeries};
use eedc_simkit::units::{Joules, Megabytes, Seconds};
use eedc_tpch::{QueryId, QueryProfile};
use std::io;
use std::path::Path;

/// One execution phase of a run, shaped identically for measured and modeled
/// runs (behavioural extrapolations carry no phase breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label (`"build"` / `"probe"`).
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Cluster energy over the phase.
    pub energy: Joules,
    /// Bytes that crossed the network.
    pub bytes_over_network: Megabytes,
    /// Time the slowest producer spent scanning.
    pub scan_time: Seconds,
    /// Completion time of the network transfer.
    pub network_time: Seconds,
    /// Time the slowest consumer spent building/probing.
    pub compute_time: Seconds,
    /// The component that bounded the phase.
    pub bottleneck: Bottleneck,
}

impl From<&PhaseStats> for PhaseRecord {
    fn from(p: &PhaseStats) -> Self {
        Self {
            label: p.label.clone(),
            duration: p.duration,
            energy: p.energy,
            bytes_over_network: p.bytes_over_network,
            scan_time: p.scan_time,
            network_time: p.network_time,
            compute_time: p.compute_time,
            bottleneck: p.bottleneck,
        }
    }
}

impl From<&PhasePrediction> for PhaseRecord {
    fn from(p: &PhasePrediction) -> Self {
        Self {
            label: p.label.clone(),
            duration: p.duration,
            energy: p.energy,
            bytes_over_network: p.bytes_over_network,
            scan_time: p.scan_time,
            network_time: p.network_time,
            compute_time: p.compute_time,
            bottleneck: p.bottleneck,
        }
    }
}

/// The uniform result of estimating one workload plan on one cluster design
/// — the currency of the experiment API, identical across all estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Label of the workload plan.
    pub workload: String,
    /// Name of the estimator that produced the record.
    pub estimator: String,
    /// Label of the design (`"2B,2W"` convention).
    pub design: String,
    /// The join strategy evaluated.
    pub strategy: JoinStrategy,
    /// Homogeneous or heterogeneous execution.
    pub mode: ExecutionMode,
    /// Number of identical concurrent queries in the batch.
    pub concurrency: usize,
    /// Query (batch) response time.
    pub response_time: Seconds,
    /// Total cluster energy.
    pub energy: Joules,
    /// Time-averaged per-node CPU utilization, in cluster node order.
    pub node_utilization: Vec<f64>,
    /// Per-node energy, in cluster node order; sums to `energy`.
    pub node_energy: Vec<Joules>,
    /// Per-phase breakdown (empty for behavioural extrapolations).
    pub phases: Vec<PhaseRecord>,
    /// Verified join output rows — measured runs only.
    pub output_rows: Option<usize>,
    /// The record's (performance, energy) point normalized against the
    /// experiment's reference design; filled in by [`Experiment::run`].
    pub normalized: Option<NormalizedPoint>,
}

impl RunRecord {
    /// Collapse into a [`Measurement`] for normalization / EDP analysis.
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.response_time, self.energy)
    }

    /// The Energy-Delay Product in joule·seconds.
    pub fn edp(&self) -> f64 {
        self.measurement().edp()
    }

    /// Render the record as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("workload", self.workload.clone())
            .set("estimator", self.estimator.clone())
            .set("design", self.design.clone())
            .set("strategy", self.strategy.to_string())
            .set("mode", self.mode.to_string())
            .set("concurrency", self.concurrency)
            .set("response_time_s", self.response_time.value())
            .set("energy_j", self.energy.value())
            .set("edp_js", self.edp())
            .set("node_utilization", self.node_utilization.clone())
            .set(
                "node_energy_j",
                self.node_energy
                    .iter()
                    .map(|e| e.value())
                    .collect::<Vec<_>>(),
            );
        let mut phases = JsonValue::array();
        for phase in &self.phases {
            let mut p = JsonValue::object();
            p.set("label", phase.label.clone())
                .set("duration_s", phase.duration.value())
                .set("energy_j", phase.energy.value())
                .set("bytes_over_network_mb", phase.bytes_over_network.value())
                .set("scan_time_s", phase.scan_time.value())
                .set("network_time_s", phase.network_time.value())
                .set("compute_time_s", phase.compute_time.value())
                .set("bottleneck", phase.bottleneck.to_string());
            phases.push(p);
        }
        obj.set("phases", phases);
        obj.set("output_rows", self.output_rows);
        match &self.normalized {
            Some(point) => {
                let mut p = JsonValue::object();
                p.set("performance", point.performance)
                    .set("energy", point.energy);
                obj.set("normalized", p);
            }
            None => {
                obj.set("normalized", JsonValue::Null);
            }
        }
        obj
    }
}

/// An evaluation lens over workload plans: measured execution, analytical
/// prediction, or behavioural extrapolation — anything that can turn a
/// `(plan, design)` pair into a [`RunRecord`].
///
/// The trait is object safe (`Box<dyn Estimator>` works), so callers can mix
/// lenses in one experiment and the Section 6 advisor can rank designs from
/// measured *or* modeled points.
pub trait Estimator {
    /// Short name used for report columns and JSON (`"measured"`,
    /// `"analytical"`, `"behavioural"`).
    fn name(&self) -> String;

    /// Estimate one plan on one design.
    ///
    /// A design the workload cannot run on at all (its hash table fits no
    /// execution mode) must surface as [`CoreError::Runtime`] so sweeps can
    /// record it as infeasible rather than aborting.
    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError>;
}

impl Estimator for Box<dyn Estimator> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        (**self).estimate(plan, design)
    }
}

/// The measured lens: load a [`PStoreCluster`] for the design and actually
/// execute the plan — engine-scale relational correctness, nominal-scale
/// time and energy, exactly the Section 5 methodology. Every estimate
/// checks the distributed join's output cardinality against the scalar
/// reference join and fails loudly on a mismatch, so a measured
/// [`RunRecord`] is always an engine-verified point.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    options: RunOptions,
}

impl Measured {
    /// A measured estimator loading clusters with the given options. The
    /// *plan* is the single source of truth for join-key skew: its `skew`
    /// field (including `None`) replaces whatever the options carry, so the
    /// measured and analytical lenses always evaluate the same workload.
    pub fn new(options: RunOptions) -> Self {
        Self { options }
    }

    /// The options used to load clusters.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }
}

impl Default for Measured {
    fn default() -> Self {
        Self::new(RunOptions::default())
    }
}

impl Estimator for Measured {
    fn name(&self) -> String {
        "measured".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let mut options = self.options;
        options.skew = plan.skew;
        let cluster = PStoreCluster::load(design.clone(), options)?;
        let execution = cluster.run_batch(&plan.query, plan.strategy, plan.sweep.concurrency)?;
        let reference = cluster.reference_join_rows(&plan.query)?;
        if execution.output_rows != reference {
            return Err(CoreError::invalid(format!(
                "{}: distributed join produced {} rows but the scalar reference produced {reference}",
                execution.cluster_label, execution.output_rows,
            )));
        }
        Ok(record_from_execution(plan, self.name(), &execution))
    }
}

fn record_from_execution(
    plan: &WorkloadPlan,
    estimator: String,
    execution: &QueryExecution,
) -> RunRecord {
    let (node_utilization, node_energy) = aggregate_nodes(
        execution
            .phases
            .iter()
            .map(|p| (p.duration, &p.node_utilization[..], &p.node_energy[..])),
    );
    RunRecord {
        workload: plan.label.clone(),
        estimator,
        design: execution.cluster_label.clone(),
        strategy: execution.strategy,
        mode: execution.mode,
        concurrency: execution.concurrency,
        response_time: execution.response_time(),
        energy: execution.energy(),
        node_utilization,
        node_energy,
        phases: execution.phases.iter().map(PhaseRecord::from).collect(),
        output_rows: Some(execution.output_rows),
        normalized: None,
    }
}

/// Duration-weighted per-node utilization and per-node energy totals across
/// phases.
fn aggregate_nodes<'a>(
    phases: impl Iterator<Item = (Seconds, &'a [f64], &'a [Joules])>,
) -> (Vec<f64>, Vec<Joules>) {
    let mut total_time = 0.0;
    let mut weighted = Vec::new();
    let mut energy: Vec<Joules> = Vec::new();
    for (duration, utilization, joules) in phases {
        if weighted.is_empty() {
            weighted = vec![0.0; utilization.len()];
            energy = vec![Joules::zero(); joules.len()];
        }
        total_time += duration.value();
        for (acc, &u) in weighted.iter_mut().zip(utilization) {
            *acc += u * duration.value();
        }
        for (acc, &e) in energy.iter_mut().zip(joules) {
            *acc += e;
        }
    }
    if total_time > f64::EPSILON {
        for u in &mut weighted {
            *u /= total_time;
        }
    }
    (weighted, energy)
}

/// The analytical lens: the closed-form Section 5.4 model, no data
/// generation and no flow simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Analytical;

impl Estimator for Analytical {
    fn name(&self) -> String {
        "analytical".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let model = AnalyticalModel::new(plan.sweep)?;
        let prediction = model.predict_skewed(design, plan.strategy, plan.skew.as_ref())?;
        Ok(record_from_prediction(plan, self.name(), &prediction))
    }
}

fn record_from_prediction(
    plan: &WorkloadPlan,
    estimator: String,
    prediction: &ModelPrediction,
) -> RunRecord {
    let (node_utilization, node_energy) = aggregate_nodes(
        prediction
            .phases
            .iter()
            .map(|p| (p.duration, &p.node_utilization[..], &p.node_energy[..])),
    );
    RunRecord {
        workload: plan.label.clone(),
        estimator,
        design: prediction.cluster_label.clone(),
        strategy: prediction.strategy,
        mode: prediction.mode,
        concurrency: plan.sweep.concurrency,
        response_time: prediction.response_time(),
        energy: prediction.energy(),
        node_utilization,
        node_energy,
        phases: prediction.phases.iter().map(PhaseRecord::from).collect(),
        output_rows: None,
        normalized: None,
    }
}

/// The behavioural lens: the first-order Section 3 scaling law, extrapolating
/// a work profile across cluster sizes with the paper's utilization→power
/// energy model.
///
/// Plans carrying a measured [`QueryProfile`] (the Vertica studies) are
/// extrapolated directly; for sweep-join plans without one, the estimator
/// derives the profile — and the absolute anchor — from the analytical model
/// evaluated at the reference configuration (`reference_nodes` homogeneous
/// nodes of the design's leading node type), mirroring how the paper
/// measured its profiles on the eight-node Cluster-V reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Behavioural {
    reference_nodes: usize,
}

impl Behavioural {
    /// A behavioural estimator anchored at the paper's eight-node reference.
    pub fn new() -> Self {
        Self { reference_nodes: 8 }
    }

    /// Anchor the scaling law at a different reference node count.
    pub fn with_reference_nodes(reference_nodes: usize) -> Self {
        Self {
            reference_nodes: reference_nodes.max(1),
        }
    }

    /// Derive a work profile (and absolute anchor) for a profile-less plan
    /// from the analytical model at the reference configuration
    /// (`reference_nodes` homogeneous nodes of the design's leading type).
    /// When that synthetic reference cannot plan the workload — its node
    /// count may be memory-tighter than the actual design — the design
    /// itself (already known feasible) anchors the derivation instead.
    fn derive_profile(
        &self,
        plan: &WorkloadPlan,
        design: &ClusterSpec,
    ) -> Result<(QueryProfile, Seconds), CoreError> {
        let node = design.nodes()[0].clone();
        let reference = ClusterSpec::homogeneous(node, self.reference_nodes)?;
        let model = AnalyticalModel::new(plan.sweep)?;
        let (prediction, predicted_nodes) =
            match model.predict_skewed(&reference, plan.strategy, plan.skew.as_ref()) {
                Ok(prediction) => (prediction, self.reference_nodes),
                Err(_) => (
                    model.predict_skewed(design, plan.strategy, plan.skew.as_ref())?,
                    design.len(),
                ),
            };
        let total = prediction.response_time().value();
        let mut repartition = 0.0;
        let mut broadcast = 0.0;
        for phase in &prediction.phases {
            let bound = phase.network_time.value().min(phase.duration.value());
            if plan.strategy == JoinStrategy::Broadcast && phase.label == "build" {
                broadcast += bound;
            } else {
                repartition += bound;
            }
        }
        let local = (total - repartition - broadcast).max(0.0);
        // The sweep join is the paper's Q3-shaped workload; `custom`
        // normalizes the fractions to sum to one.
        let profile = QueryProfile::custom(QueryId::Q3, local, repartition, broadcast);
        // The anchor must be expressed in reference-configuration terms:
        // `predict` multiplies it by `rel(n)`, so divide out the relative
        // time of the cluster the derivation actually predicted on (1 in
        // the common case where that cluster IS the reference).
        let rel = BehaviouralModel {
            profile: profile.clone(),
            reference_nodes: self.reference_nodes,
        }
        .relative_response_time(predicted_nodes);
        let anchor = if rel > f64::EPSILON {
            total / rel
        } else {
            total
        };
        Ok((profile, Seconds(anchor)))
    }
}

impl Default for Behavioural {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for Behavioural {
    fn name(&self) -> String {
        "behavioural".into()
    }

    fn estimate(&self, plan: &WorkloadPlan, design: &ClusterSpec) -> Result<RunRecord, CoreError> {
        let (mode, profile, derived_anchor) = match &plan.profile {
            // A measured profile describes a run that demonstrably completed
            // on a real DBMS (which stages to disk rather than refusing), so
            // no memory-feasibility rule applies to it.
            Some(profile) => (ExecutionMode::Homogeneous, profile.clone(), Seconds(1.0)),
            // Profile-less sweep plans are judged on the design itself, with
            // the same hash-table rule every other lens applies — not on the
            // synthetic derivation reference, which may be differently sized.
            None => {
                let (mode, _) = eedc_pstore::select_execution_mode(
                    design.nodes(),
                    plan.strategy,
                    plan.sweep.total_hash_table(),
                    plan.sweep.hash_table_headroom,
                )?;
                let (profile, anchor) = self.derive_profile(plan, design)?;
                (mode, profile, anchor)
            }
        };
        let anchor = plan.reference_time.unwrap_or(derived_anchor);
        let model = BehaviouralModel {
            profile,
            reference_nodes: self.reference_nodes,
        };
        let prediction = model.predict(design.nodes(), anchor);
        Ok(RunRecord {
            workload: plan.label.clone(),
            estimator: self.name(),
            design: design.label(),
            strategy: plan.strategy,
            // The scaling law itself has no demotion concept, but the record
            // reports the mode the planner would select for the design.
            mode,
            concurrency: plan.sweep.concurrency,
            response_time: prediction.response_time,
            energy: prediction.energy,
            node_utilization: prediction.node_utilization,
            node_energy: prediction.node_energy,
            phases: Vec::new(),
            output_rows: None,
            normalized: None,
        })
    }
}

/// One estimator's sweep of one workload plan across the experiment's
/// designs: the uniform records (reference first), the designs the estimator
/// refused as infeasible, and the normalized series the figures plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSeries {
    /// The estimator that produced the series.
    pub estimator: String,
    /// Label of the workload plan.
    pub workload: String,
    /// The join strategy evaluated.
    pub strategy: JoinStrategy,
    /// Records for every feasible design, reference first, each carrying its
    /// normalized point.
    pub records: Vec<RunRecord>,
    /// Designs whose hash table fits no execution mode, with the planner's
    /// reason — accounted rather than silently dropped.
    pub infeasible: Vec<(String, String)>,
    /// The normalized (performance, energy) series relative to the reference
    /// design.
    pub normalized: NormalizedSeries,
}

impl RunSeries {
    /// The record for a labelled design, if it was feasible.
    pub fn record(&self, design: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.design == design)
    }

    /// Render the series as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("estimator", self.estimator.clone())
            .set("workload", self.workload.clone())
            .set("strategy", self.strategy.to_string())
            .set("reference", self.normalized.reference_label.clone());
        let mut records = JsonValue::array();
        for record in &self.records {
            records.push(record.to_json());
        }
        obj.set("records", records);
        let mut infeasible = JsonValue::array();
        for (design, reason) in &self.infeasible {
            let mut entry = JsonValue::object();
            entry
                .set("design", design.clone())
                .set("reason", reason.clone());
            infeasible.push(entry);
        }
        obj.set("infeasible", infeasible);
        obj
    }
}

/// A full experiment report: one [`RunSeries`] per (estimator × workload
/// plan) pair, in estimator-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// The series, grouped by estimator, then workload plan.
    pub series: Vec<RunSeries>,
}

impl ExperimentReport {
    /// All series produced by the named estimator.
    pub fn by_estimator<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RunSeries> {
        self.series.iter().filter(move |s| s.estimator == name)
    }

    /// The single series for an (estimator, workload) pair, if present.
    pub fn series_for(&self, estimator: &str, workload: &str) -> Option<&RunSeries> {
        self.series
            .iter()
            .find(|s| s.estimator == estimator && s.workload == workload)
    }

    /// Every record across all series.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.series.iter().flat_map(|s| s.records.iter())
    }

    /// Render the report as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        let mut series = JsonValue::array();
        for s in &self.series {
            series.push(s.to_json());
        }
        obj.set("series", series);
        obj
    }

    /// Render the report as an indented JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_pretty()
    }

    /// Write the report as JSON to `path`, creating parent directories as
    /// needed — the first step of the figures pipeline's real serialization.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }
}

/// Builder-style experiment runner: any workload, a set of cluster designs,
/// and one or more estimators — the single entry point the paper's
/// comparisons (and every example, bench, and validation test) go through.
///
/// The first design added is the normalization reference; it must be
/// feasible under every estimator. Designs an estimator refuses (hash table
/// fits no execution mode) are recorded per series as infeasible.
pub struct Experiment {
    plans: Vec<WorkloadPlan>,
    designs: Vec<ClusterSpec>,
    estimators: Vec<Box<dyn Estimator>>,
    strategy: Option<JoinStrategy>,
    query: Option<JoinQuerySpec>,
}

impl Experiment {
    /// Start an experiment over a workload's plans.
    pub fn new(workload: &dyn Workload) -> Self {
        Self {
            plans: workload.plans(),
            designs: Vec::new(),
            estimators: Vec::new(),
            strategy: None,
            query: None,
        }
    }

    /// Append another workload's plans to the experiment.
    pub fn workload(mut self, workload: &dyn Workload) -> Self {
        self.plans.extend(workload.plans());
        self
    }

    /// Override the join strategy of every plan.
    pub fn strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Override the query spec the measured runtime executes (the analytical
    /// sweep volumes are left untouched).
    pub fn query(mut self, query: JoinQuerySpec) -> Self {
        self.query = Some(query);
        self
    }

    /// Add one candidate design. The first design added is the
    /// normalization reference.
    pub fn design(mut self, design: ClusterSpec) -> Self {
        self.designs.push(design);
        self
    }

    /// Add candidate designs in order.
    pub fn designs(mut self, designs: impl IntoIterator<Item = ClusterSpec>) -> Self {
        self.designs.extend(designs);
        self
    }

    /// Add an estimator. Estimators run in the order they were added.
    pub fn estimator(mut self, estimator: impl Estimator + 'static) -> Self {
        self.estimators.push(Box::new(estimator));
        self
    }

    /// Run every (estimator × plan) series across the designs.
    pub fn run(&self) -> Result<ExperimentReport, CoreError> {
        if self.plans.is_empty() {
            return Err(CoreError::invalid("experiment has no workload plans"));
        }
        if self.designs.is_empty() {
            return Err(CoreError::invalid("experiment has no designs"));
        }
        if self.estimators.is_empty() {
            return Err(CoreError::invalid("experiment has no estimators"));
        }
        let mut series = Vec::new();
        for estimator in &self.estimators {
            for plan in &self.plans {
                let mut plan = plan.clone();
                if let Some(strategy) = self.strategy {
                    plan.strategy = strategy;
                }
                if let Some(query) = self.query {
                    plan.query = query;
                }
                series.push(evaluate_series(estimator.as_ref(), &plan, &self.designs)?);
            }
        }
        Ok(ExperimentReport { series })
    }
}

/// Evaluate one (estimator, plan) series across `designs`: the first design
/// is the normalization reference and must be feasible; designs the
/// estimator refuses ([`CoreError::Runtime`]) are recorded as infeasible.
/// This is the single normalization/infeasibility protocol shared by
/// [`Experiment::run`] and the Section 6 advisor.
pub(crate) fn evaluate_series(
    estimator: &dyn Estimator,
    plan: &WorkloadPlan,
    designs: &[ClusterSpec],
) -> Result<RunSeries, CoreError> {
    let reference_design = designs
        .first()
        .ok_or_else(|| CoreError::invalid("a series needs at least one design"))?;
    let mut reference = estimator.estimate(plan, reference_design)?;
    let reference_measurement = reference.measurement();
    reference.normalized = Some(NormalizedPoint::reference());
    let mut normalized = NormalizedSeries::with_reference(reference.design.clone());
    let mut records = vec![reference];
    let mut infeasible = Vec::new();
    for design in &designs[1..] {
        match estimator.estimate(plan, design) {
            Ok(mut record) => {
                let point = record
                    .measurement()
                    .normalized_against(&reference_measurement)?;
                record.normalized = Some(point);
                normalized.push(record.design.clone(), point);
                records.push(record);
            }
            Err(CoreError::Runtime(err)) => {
                infeasible.push((design.label(), err.to_string()));
            }
            Err(err) => return Err(err),
        }
    }
    Ok(RunSeries {
        estimator: estimator.name(),
        workload: plan.label.clone(),
        strategy: plan.strategy,
        records,
        infeasible,
        normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SweepJoin;
    use crate::workload::{ConcurrencySweep, ProfiledQuery, SkewedJoin};
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};

    fn sweep() -> SweepJoin {
        SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle())
    }

    fn homogeneous(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()
    }

    #[test]
    fn analytical_series_normalizes_against_the_first_design() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8), homogeneous(4)])
            .estimator(Analytical)
            .run()
            .unwrap();
        assert_eq!(report.series.len(), 1);
        let series = &report.series[0];
        assert_eq!(series.estimator, "analytical");
        assert_eq!(series.records.len(), 3);
        assert_eq!(series.records[0].design, "16B,0W");
        assert_eq!(
            series.records[0].normalized,
            Some(NormalizedPoint::reference())
        );
        // Smaller clusters are slower: normalized performance below 1.
        let p8 = series.record("8B,0W").unwrap().normalized.unwrap();
        assert!(p8.performance < 1.0);
        // The normalized series carries the same points.
        assert_eq!(series.normalized.points().len(), 3);
        // Phase breakdowns and per-node vectors are populated.
        let r = series.record("4B,0W").unwrap();
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.node_utilization.len(), 4);
        assert_eq!(r.node_energy.len(), 4);
        let node_total: f64 = r.node_energy.iter().map(|e| e.value()).sum();
        assert!((node_total - r.energy.value()).abs() < 1e-6 * node_total);
        assert!(r.edp() > 0.0);
        assert_eq!(r.output_rows, None);
    }

    #[test]
    fn infeasible_designs_are_recorded_not_fatal() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
            ])
            .estimator(Analytical)
            .run()
            .unwrap();
        let series = &report.series[0];
        assert_eq!(series.records.len(), 1);
        assert_eq!(series.infeasible.len(), 1);
        assert_eq!(series.infeasible[0].0, "0B,4W");
        assert!(series.infeasible[0].1.contains("does not fit"));
    }

    #[test]
    fn estimators_and_plans_cross_product_into_series() {
        let workload = ConcurrencySweep::new(sweep(), [1, 2]);
        let report = Experiment::new(&workload)
            .designs([homogeneous(16), homogeneous(8)])
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        // 2 estimators x 2 concurrency levels.
        assert_eq!(report.series.len(), 4);
        assert_eq!(report.by_estimator("analytical").count(), 2);
        assert_eq!(report.by_estimator("behavioural").count(), 2);
        assert_eq!(report.records().count(), 8);
        // Higher concurrency is slower under both lenses.
        for estimator in ["analytical", "behavioural"] {
            let series: Vec<_> = report.by_estimator(estimator).collect();
            let t1 = series[0].records[0].response_time;
            let t2 = series[1].records[0].response_time;
            assert!(t2 > t1, "{estimator}: x2 batch not slower");
        }
    }

    #[test]
    fn behavioural_tracks_analytical_at_the_reference_configuration() {
        // For a profile-less plan, the behavioural estimator derives its
        // profile and anchor from the analytical model at the 8-node
        // reference — so at exactly 8 nodes the two lenses coincide on
        // response time.
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([homogeneous(8), homogeneous(16), homogeneous(4)])
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let analytical = &report.series[0].records[0];
        let behavioural = &report.series[1].records[0];
        assert!(
            (analytical.response_time.value() - behavioural.response_time.value()).abs()
                < 1e-6 * analytical.response_time.value()
        );
        // Away from the reference the lenses legitimately diverge — and the
        // divergence is the paper's Section 3 point. The analytical model
        // sees per-port shuffle volume shrink as nodes are added, so 16
        // nodes beat 8; the behavioural law pins repartition-bound work
        // (the dual-shuffle sweep is fully network-bound, so its derived
        // repartition fraction is 1) and predicts no speedup at all.
        let a16 = report.series[0].record("16B,0W").unwrap();
        let b16 = report.series[1].record("16B,0W").unwrap();
        assert!(a16.response_time < analytical.response_time);
        assert!(
            (b16.response_time.value() - behavioural.response_time.value()).abs()
                < 1e-9 * behavioural.response_time.value()
        );
        // Shrinking the cluster never speeds the law up.
        let b4 = report.series[1].record("4B,0W").unwrap();
        assert!(b4.response_time.value() >= behavioural.response_time.value() - 1e-9);
    }

    #[test]
    fn profiled_queries_flow_through_the_behavioural_estimator() {
        let q12 = ProfiledQuery::vertica_sf1000(eedc_tpch::QueryId::Q12);
        let report = Experiment::new(&q12)
            .designs([homogeneous(8), homogeneous(16), homogeneous(32)])
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let series = &report.series[0];
        // Unit anchor: the reference record reads exactly 1.0 s.
        assert!((series.records[0].response_time.value() - 1.0).abs() < 1e-12);
        // Q12 flattens out: 32 nodes is barely faster than 16.
        let t16 = series.record("16B,0W").unwrap().response_time.value();
        let t32 = series.record("32B,0W").unwrap().response_time.value();
        assert!(t16 < 1.0 && t32 < t16);
        assert!(t32 > 0.48, "t32 {t32} under the scaling floor");
        // ... while energy rises (the energy-proportionality gap).
        let e = |d: &str| series.record(d).unwrap().energy.value();
        assert!(e("32B,0W") > e("16B,0W"));
        assert!(e("16B,0W") > e("8B,0W"));
        // Behavioural records carry no phase breakdown.
        assert!(series.records[0].phases.is_empty());
    }

    #[test]
    fn skewed_workloads_run_hotter_than_uniform_under_the_model() {
        let uniform = sweep();
        let skewed = SkewedJoin::new(
            uniform,
            eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            },
        );
        let designs = [homogeneous(16)];
        let u = Experiment::new(&uniform)
            .designs(designs.clone())
            .estimator(Analytical)
            .run()
            .unwrap();
        let s = Experiment::new(&skewed)
            .designs(designs)
            .estimator(Analytical)
            .run()
            .unwrap();
        let ur = &u.series[0].records[0];
        let sr = &s.series[0].records[0];
        assert!(sr.response_time > ur.response_time);
        let hot = |r: &RunRecord| {
            r.node_energy
                .iter()
                .map(|e| e.value())
                .fold(0.0_f64, f64::max)
        };
        assert!(hot(sr) > hot(ur));
    }

    #[test]
    fn behavioural_and_analytical_agree_on_feasibility() {
        // Feasibility is a property of the design, not of the behavioural
        // estimator's synthetic derivation reference: 16 laptops CAN hold
        // the 70 GB dual-shuffle hash table (4.4 GB per node against 6.4 GB
        // usable) even though 8 of them cannot, while 4 laptops cannot hold
        // it in any mode. Both lenses must classify identically.
        let workload = sweep();
        let designs = [
            homogeneous(16),
            ClusterSpec::homogeneous(laptop_b(), 16).unwrap(),
            ClusterSpec::homogeneous(laptop_b(), 4).unwrap(),
        ];
        let report = Experiment::new(&workload)
            .designs(designs)
            .estimator(Analytical)
            .estimator(Behavioural::default())
            .run()
            .unwrap();
        let analytical = &report.series[0];
        let behavioural = &report.series[1];
        for series in [analytical, behavioural] {
            assert!(
                series.record("0B,16W").is_some(),
                "{}: feasible all-Wimpy design dropped",
                series.estimator
            );
            assert_eq!(series.infeasible.len(), 1, "{}", series.estimator);
            assert_eq!(series.infeasible[0].0, "0B,4W", "{}", series.estimator);
        }
        // The fallback derivation (8 laptops cannot plan, so the design
        // itself anchors it) must express the anchor in reference terms:
        // round-tripping through rel(16) recovers the analytical time at
        // the design, not a mis-scaled multiple of it.
        let a = analytical.record("0B,16W").unwrap();
        let b = behavioural.record("0B,16W").unwrap();
        assert!(
            (a.response_time.value() - b.response_time.value()).abs()
                < 1e-9 * a.response_time.value(),
            "fallback anchor mis-scaled: analytical {} vs behavioural {}",
            a.response_time.value(),
            b.response_time.value(),
        );
    }

    #[test]
    fn measured_plan_skew_is_authoritative_over_options() {
        // The plan is the single source of truth for join-key skew: a
        // skew-free plan run through a Measured estimator whose options
        // carry a heavy skew must behave exactly like a skew-free run, so
        // measured and analytical lenses always see the same workload.
        let small = RunOptions {
            engine_scale: eedc_tpch::ScaleFactor(0.001),
            ..RunOptions::default()
        };
        let skew_options = RunOptions {
            skew: Some(eedc_pstore::JoinSkew {
                theta: 1.5,
                key_domain: 1_000,
                seed: 7,
            }),
            ..small
        };
        let plan = &sweep().plans()[0];
        let design = homogeneous(4);
        let plain = Measured::new(small).estimate(plan, &design).unwrap();
        let overridden = Measured::new(skew_options).estimate(plan, &design).unwrap();
        assert_eq!(plain.measurement(), overridden.measurement());
    }

    #[test]
    fn strategy_and_query_overrides_patch_every_plan() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .strategy(JoinStrategy::PrePartitioned)
            .designs([homogeneous(8)])
            .estimator(Analytical)
            .run()
            .unwrap();
        assert_eq!(report.series[0].strategy, JoinStrategy::PrePartitioned);
        assert_eq!(
            report.series[0].records[0].phases[0].bytes_over_network,
            Megabytes::zero()
        );
    }

    #[test]
    fn dyn_estimators_are_first_class() {
        // Object-safety smoke: estimators as trait objects, mixed in one
        // collection, driven through the same API.
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(Analytical),
            Box::new(Behavioural::default()),
            Box::new(Measured::default()),
        ];
        let plan = &sweep().plans()[0];
        let design = homogeneous(4);
        for estimator in &estimators {
            let record = estimator.estimate(plan, &design).unwrap();
            assert_eq!(record.estimator, estimator.name());
            assert!(record.response_time.value() > 0.0);
            assert!(record.energy.value() > 0.0);
        }
        // And a boxed estimator slots into the builder unchanged.
        let boxed: Box<dyn Estimator> = Box::new(Analytical);
        let report = Experiment::new(&sweep())
            .designs([homogeneous(8)])
            .estimator(boxed)
            .run()
            .unwrap();
        assert_eq!(report.series[0].estimator, "analytical");
    }

    #[test]
    fn empty_experiments_are_invalid() {
        let workload = sweep();
        assert!(Experiment::new(&workload)
            .estimator(Analytical)
            .run()
            .is_err());
        assert!(Experiment::new(&workload)
            .designs([homogeneous(4)])
            .run()
            .is_err());
    }

    #[test]
    fn reports_serialize_to_json() {
        let workload = sweep();
        let report = Experiment::new(&workload)
            .designs([
                homogeneous(16),
                homogeneous(8),
                ClusterSpec::homogeneous(laptop_b(), 2).unwrap(),
            ])
            .estimator(Analytical)
            .run()
            .unwrap();
        let json = report.to_json_string();
        assert!(json.contains("\"estimator\": \"analytical\""), "{json}");
        assert!(json.contains("\"design\": \"16B,0W\""));
        assert!(json.contains("\"normalized\""));
        assert!(json.contains("\"infeasible\""));
        assert!(json.contains("\"bottleneck\": \"network\""));
        // And lands on disk through the writer.
        let dir = std::env::temp_dir().join("eedc-experiment-test");
        let path = dir.join("nested").join("report.json");
        report.write_json(&path).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, json);
        std::fs::remove_dir_all(&dir).ok();
    }
}
