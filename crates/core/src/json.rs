//! Minimal JSON emission *and parsing* for the figures pipeline.
//!
//! The build environment has no registry access, so the workspace's `serde`
//! is a no-op stand-in (see `vendor/`); this module is the hand-rolled
//! writer/reader pair that lets experiment results survive a run on disk
//! and come back for baseline comparisons. The writer emits standard JSON
//! (RFC 8259): escaped strings, `null` for non-finite numbers, and
//! deterministic key order (insertion order). The reader
//! ([`JsonValue::parse`]) accepts standard JSON and reconstructs the same
//! [`JsonValue`] tree, so `parse(v.to_json()) == v` for every tree the
//! writer can produce; typed accessors ([`JsonValue::field`],
//! [`JsonValue::as_f64`], …) then lift trees back into
//! [`RunRecord`](crate::RunRecord) series — see
//! [`ExperimentReport::read_json`](crate::ExperimentReport::read_json).
//!
//! Panic policy: every *reader* path returns `Err` on malformed input —
//! missing fields, wrong shapes, bad escapes, non-finite numbers — never
//! panics; the only panics in this module are the two writer-side builder
//! guards ([`JsonValue::set`] / [`JsonValue::push`] on the wrong variant),
//! which are waived programming-error assertions, not data errors.

use crate::error::CoreError;
use std::fmt::Write as _;

/// A JSON value tree, built imperatively and rendered to a string.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        JsonValue::Array(Vec::new())
    }

    /// Insert a field into an object (panics if `self` is not an object —
    /// a programming error in the serializer, not a data error).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.into(), value.into())),
            // lint:allow(panic-policy): builder misuse is a programming error in the serializer, not a data error — reader paths return Err
            other => panic!("set() on non-object JSON value {other:?}"),
        }
        self
    }

    /// Append an element to an array (panics if `self` is not an array).
    pub fn push(&mut self, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Array(items) => items.push(value.into()),
            // lint:allow(panic-policy): builder misuse is a programming error in the serializer, not a data error — reader paths return Err
            other => panic!("push() on non-array JSON value {other:?}"),
        }
        self
    }

    /// Render to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Render to an indented multi-line JSON string (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    // Integral values render without a trailing ".0"; JSON
                    // has one number type, so this is purely cosmetic.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                render_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            JsonValue::Object(fields) => {
                render_sequence(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    escape_into(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth + 1);
                });
            }
        }
    }
}

impl JsonValue {
    /// Parse a JSON document into a value tree. Accepts standard RFC 8259
    /// JSON (the writer's output always round-trips); trailing non-space
    /// content is an error.
    pub fn parse(src: &str) -> Result<Self, CoreError> {
        let mut parser = Parser { src, pos: 0 };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != src.len() {
            return Err(parser.error("trailing content after the document"));
        }
        Ok(value)
    }

    /// The value of an object field, if `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`get`](Self::get), but a missing field is an error naming the
    /// key — the ergonomic spine of the typed readers.
    pub fn field(&self, key: &str) -> Result<&JsonValue, CoreError> {
        self.get(key)
            .ok_or_else(|| CoreError::invalid(format!("missing JSON field '{key}'")))
    }

    /// The numeric value, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// A required numeric field of an object.
    pub fn f64_field(&self, key: &str) -> Result<f64, CoreError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| CoreError::invalid(format!("JSON field '{key}' is not a number")))
    }

    /// A required numeric field read as a non-negative integer.
    pub fn usize_field(&self, key: &str) -> Result<usize, CoreError> {
        let n = self.f64_field(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(CoreError::invalid(format!(
                "JSON field '{key}' is not a non-negative integer: {n}"
            )));
        }
        Ok(n as usize)
    }

    /// A required string field of an object.
    pub fn str_field(&self, key: &str) -> Result<&str, CoreError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| CoreError::invalid(format!("JSON field '{key}' is not a string")))
    }

    /// A required array field of an object.
    pub fn array_field(&self, key: &str) -> Result<&[JsonValue], CoreError> {
        self.field(key)?
            .as_array()
            .ok_or_else(|| CoreError::invalid(format!("JSON field '{key}' is not an array")))
    }

    /// A required boolean field of an object.
    pub fn bool_field(&self, key: &str) -> Result<bool, CoreError> {
        self.field(key)?
            .as_bool()
            .ok_or_else(|| CoreError::invalid(format!("JSON field '{key}' is not a boolean")))
    }
}

/// Recursive-descent JSON parser over a byte cursor; string content is
/// decoded per escape, everything else is sliced from the source.
struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::invalid(format!("JSON at byte {}: {}", self.pos, message.into()))
    }

    fn bytes(&self) -> &[u8] {
        self.src.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), CoreError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, CoreError> {
        if self.src[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, CoreError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, CoreError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match text.parse::<f64>() {
            // An overflowing literal like `1e999` parses to infinity; the
            // writer renders non-finite numbers as `null`, so a non-finite
            // parse can only mean an out-of-range document.
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            Ok(_) => Err(self.error(format!("non-finite number '{text}'"))),
            Err(_) => Err(self.error(format!("invalid number '{text}'"))),
        }
    }

    fn string(&mut self) -> Result<String, CoreError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.src[self.pos..];
            let mut chars = rest.chars();
            match chars.next() {
                None => return Err(self.error("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let escape = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += escape.len_utf8();
                    match escape {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.error(format!("invalid escape '\\{other}'")));
                        }
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// The four hex digits of a `\u` escape, combining UTF-16 surrogate
    /// pairs when the first unit is a high surrogate.
    fn unicode_escape(&mut self) -> Result<char, CoreError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            if !self.src[self.pos..].starts_with("\\u") {
                return Err(self.error("unpaired UTF-16 high surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid UTF-16 low surrogate"));
            }
            let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, CoreError> {
        let digits = self
            .src
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| self.error(format!("invalid \\u digits '{digits}'")))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<JsonValue, CoreError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, CoreError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

fn render_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.into())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(value: Option<T>) -> Self {
        value.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::from(true).to_json(), "true");
        assert_eq!(JsonValue::from(3.0).to_json(), "3");
        assert_eq!(JsonValue::from(3.25).to_json(), "3.25");
        assert_eq!(JsonValue::from(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::from(7usize).to_json(), "7");
        assert_eq!(JsonValue::from("hi").to_json(), "\"hi\"");
        assert_eq!(JsonValue::from(None::<f64>).to_json(), "null");
        assert_eq!(JsonValue::from(Some(2.0)).to_json(), "2");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_json(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let mut obj = JsonValue::object();
        obj.set("name", "8B,0W").set("time", 12.5);
        let mut arr = JsonValue::array();
        arr.push(1.0).push(2.0);
        obj.set("series", arr);
        obj.set("empty", JsonValue::array());
        assert_eq!(
            obj.to_json(),
            "{\"name\":\"8B,0W\",\"time\":12.5,\"series\":[1,2],\"empty\":[]}"
        );
        let pretty = obj.to_json_pretty();
        assert!(pretty.contains("\n  \"name\": \"8B,0W\""), "{pretty}");
        assert!(pretty.ends_with('}'));
        // Pretty output round-trips the same structure (no trailing commas).
        assert!(!pretty.contains(",\n}"));
    }

    #[test]
    fn vec_conversions_build_arrays() {
        let v: JsonValue = vec![0.5, 0.25].into();
        assert_eq!(v.to_json(), "[0.5,0.25]");
        let v: JsonValue = vec!["a".to_string(), "b".to_string()].into();
        assert_eq!(v.to_json(), "[\"a\",\"b\"]");
    }

    #[test]
    #[should_panic(expected = "set() on non-object")]
    fn set_on_array_panics() {
        JsonValue::array().set("k", 1.0);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut obj = JsonValue::object();
        obj.set("name", "8B,0W")
            .set("time", 12.5)
            .set("count", 7usize)
            .set("escaped", "a\"b\\c\nd\te")
            .set("missing", JsonValue::Null)
            .set("flag", true);
        let mut arr = JsonValue::array();
        arr.push(1.0).push(-2.5e3).push(JsonValue::array());
        obj.set("series", arr);
        let mut nested = JsonValue::object();
        nested.set("performance", 0.75);
        obj.set("normalized", nested);
        // Compact and pretty renderings parse back to the identical tree.
        assert_eq!(JsonValue::parse(&obj.to_json()).unwrap(), obj);
        assert_eq!(JsonValue::parse(&obj.to_json_pretty()).unwrap(), obj);
    }

    #[test]
    fn parse_handles_standard_json() {
        let v = JsonValue::parse(r#"  { "a" : [ 1 , 2.5e-1, null ], "b": "xAé" } "#).unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.array_field("a").unwrap()[1].as_f64(), Some(0.25));
        assert!(v.array_field("a").unwrap()[2].is_null());
        assert_eq!(v.str_field("b").unwrap(), "xAé");
        // Surrogate pairs decode to one scalar value.
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\": 1,}x",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "01x",
            "{} trailing",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_with_position() {
        // Structurally complete documents followed by junk: the error names
        // the byte where the junk starts, not a generic parse failure.
        for (bad, at) in [("{} trailing", 3), ("[1] 2", 4), ("\"s\"x", 3), ("1,", 1)] {
            let err = JsonValue::parse(bad).unwrap_err().to_string();
            assert!(err.contains("trailing content"), "{bad:?}: {err}");
            assert!(err.contains(&format!("byte {at}")), "{bad:?}: {err}");
        }
    }

    #[test]
    fn parse_rejects_unterminated_strings_and_escapes() {
        for bad in [
            "\"open",
            "\"esc\\",
            "\"\\u12",
            "\"\\uZZZZ\"",
            "{\"k",
            "{\"k\": \"v",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = JsonValue::parse("\"open").unwrap_err().to_string();
        assert!(err.contains("unterminated string"), "{err}");
        let err = JsonValue::parse("\"\\u12\"").unwrap_err().to_string();
        assert!(err.contains("\\u"), "{err}");
    }

    #[test]
    fn parse_rejects_bad_surrogates() {
        // High surrogate followed by: nothing, a non-escape, another high
        // surrogate, or a non-surrogate unit; and a bare low surrogate.
        for bad in [
            "\"\\ud800\"",
            "\"\\ud800x\"",
            "\"\\ud800\\ud800\"",
            "\"\\ud800\\u0041\"",
        ] {
            let err = JsonValue::parse(bad).unwrap_err().to_string();
            assert!(err.contains("surrogate"), "{bad:?}: {err}");
        }
        // A bare low surrogate is not a valid scalar value either.
        assert!(JsonValue::parse("\"\\udc00\"").is_err());
        // A proper pair still decodes.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn parse_rejects_non_finite_numbers() {
        // JSON has no literal for NaN/Infinity, and overflowing literals
        // must not silently become f64::INFINITY.
        for bad in [
            "1e999",
            "-1e999",
            "1e400",
            "[1, 1e999]",
            "NaN",
            "Infinity",
            "-Infinity",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = JsonValue::parse("1e999").unwrap_err().to_string();
        assert!(err.contains("non-finite"), "{err}");
        // Large-but-finite literals still parse.
        assert_eq!(JsonValue::parse("1e308").unwrap().as_f64(), Some(1e308));
        assert_eq!(JsonValue::parse("-2.5e-3").unwrap().as_f64(), Some(-0.0025));
    }

    #[test]
    fn typed_accessors_surface_shape_errors() {
        let v = JsonValue::parse(r#"{"n": 1.5, "s": "x", "a": [], "i": 3, "neg": -1, "b": true}"#)
            .unwrap();
        assert_eq!(v.f64_field("n").unwrap(), 1.5);
        assert!(v.bool_field("b").unwrap());
        assert!(v.bool_field("n").is_err());
        assert!(v.bool_field("missing").is_err());
        assert_eq!(v.usize_field("i").unwrap(), 3);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert!(v.array_field("a").unwrap().is_empty());
        assert_eq!(v.as_bool(), None);
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(v.field("missing").is_err());
        assert!(v.f64_field("s").is_err());
        assert!(v.str_field("n").is_err());
        assert!(v.array_field("n").is_err());
        assert!(v.usize_field("n").is_err(), "1.5 is not an integer");
        assert!(v.usize_field("neg").is_err());
        // Non-objects have no fields.
        assert!(JsonValue::Null.get("k").is_none());
        assert!(JsonValue::Null.as_object().is_none());
        assert_eq!(v.as_object().unwrap().len(), 6);
    }
}
