//! Minimal JSON emission for the figures pipeline.
//!
//! The build environment has no registry access, so the workspace's `serde`
//! is a no-op stand-in (see `vendor/`); this module is the hand-rolled
//! writer that lets experiment results survive a run on disk. It emits
//! standard JSON (RFC 8259): escaped strings, `null` for non-finite
//! numbers, and deterministic key order (insertion order).

use std::fmt::Write as _;

/// A JSON value tree, built imperatively and rendered to a string.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        JsonValue::Array(Vec::new())
    }

    /// Insert a field into an object (panics if `self` is not an object —
    /// a programming error in the serializer, not a data error).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.into(), value.into())),
            other => panic!("set() on non-object JSON value {other:?}"),
        }
        self
    }

    /// Append an element to an array (panics if `self` is not an array).
    pub fn push(&mut self, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Array(items) => items.push(value.into()),
            other => panic!("push() on non-array JSON value {other:?}"),
        }
        self
    }

    /// Render to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Render to an indented multi-line JSON string (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    // Integral values render without a trailing ".0"; JSON
                    // has one number type, so this is purely cosmetic.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                render_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            JsonValue::Object(fields) => {
                render_sequence(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    escape_into(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth + 1);
                });
            }
        }
    }
}

fn render_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.into())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(value: Option<T>) -> Self {
        value.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::from(true).to_json(), "true");
        assert_eq!(JsonValue::from(3.0).to_json(), "3");
        assert_eq!(JsonValue::from(3.25).to_json(), "3.25");
        assert_eq!(JsonValue::from(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::from(7usize).to_json(), "7");
        assert_eq!(JsonValue::from("hi").to_json(), "\"hi\"");
        assert_eq!(JsonValue::from(None::<f64>).to_json(), "null");
        assert_eq!(JsonValue::from(Some(2.0)).to_json(), "2");
    }

    #[test]
    fn strings_are_escaped() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_json(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let mut obj = JsonValue::object();
        obj.set("name", "8B,0W").set("time", 12.5);
        let mut arr = JsonValue::array();
        arr.push(1.0).push(2.0);
        obj.set("series", arr);
        obj.set("empty", JsonValue::array());
        assert_eq!(
            obj.to_json(),
            "{\"name\":\"8B,0W\",\"time\":12.5,\"series\":[1,2],\"empty\":[]}"
        );
        let pretty = obj.to_json_pretty();
        assert!(pretty.contains("\n  \"name\": \"8B,0W\""), "{pretty}");
        assert!(pretty.ends_with('}'));
        // Pretty output round-trips the same structure (no trailing commas).
        assert!(!pretty.contains(",\n}"));
    }

    #[test]
    fn vec_conversions_build_arrays() {
        let v: JsonValue = vec![0.5, 0.25].into();
        assert_eq!(v.to_json(), "[0.5,0.25]");
        let v: JsonValue = vec!["a".to_string(), "b".to_string()].into();
        assert_eq!(v.to_json(), "[\"a\",\"b\"]");
    }

    #[test]
    #[should_panic(expected = "set() on non-object")]
    fn set_on_array_panics() {
        JsonValue::array().set("k", 1.0);
    }
}
