//! The Section 6 design-space advisor.
//!
//! The paper's selection rule: enumerate every `(b Beefy, w Wimpy)` cluster
//! design, evaluate each one's response time and energy, normalize against
//! the all-Beefy reference design, and pick the design with the lowest
//! energy among those that still meet a performance floor ("the most
//! energy-efficient configuration that satisfies the performance target").
//!
//! The advisor ranks designs through *any* [`Estimator`] — the closed-form
//! Section 5.4 model for instant sweeps, the measured P-store runtime when
//! ground truth is worth the cost, or the behavioural law for first-order
//! what-ifs — so the selection rule is independent of the evaluation lens.
//!
//! Designs whose build-side hash table fits no execution mode are reported
//! as *infeasible* rather than silently dropped, so a sweep over a large
//! grid still accounts for every point.

use crate::error::CoreError;
use crate::experiment::{Analytical, Estimator, RunRecord};
use crate::model::AnalyticalModel;
use crate::workload::{Workload, WorkloadPlan};
use eedc_pstore::stats::ExecutionMode;
use eedc_pstore::{ClusterSpec, JoinStrategy};
use eedc_simkit::metrics::{NormalizedPoint, NormalizedSeries};
use eedc_simkit::units::Seconds;
use eedc_simkit::NodeSpec;
use std::fmt;

/// The `(b, w)` grid of candidate cluster designs built from one Beefy and
/// one Wimpy node type.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    beefy: NodeSpec,
    wimpy: NodeSpec,
    max_beefy: usize,
    max_wimpy: usize,
}

impl DesignSpace {
    /// A design space of every `(b, w)` combination with `b ≤ max_beefy`,
    /// `w ≤ max_wimpy`, and at least one node. `max_beefy` must be at least 1
    /// because the all-Beefy `(max_beefy, 0)` design is the normalization
    /// reference.
    pub fn new(
        beefy: NodeSpec,
        wimpy: NodeSpec,
        max_beefy: usize,
        max_wimpy: usize,
    ) -> Result<Self, CoreError> {
        if !beefy.is_beefy() {
            return Err(CoreError::invalid(format!(
                "design-space Beefy node '{}' is classed {}",
                beefy.name, beefy.class
            )));
        }
        if !wimpy.is_wimpy() {
            return Err(CoreError::invalid(format!(
                "design-space Wimpy node '{}' is classed {}",
                wimpy.name, wimpy.class
            )));
        }
        if max_beefy == 0 {
            return Err(CoreError::invalid(
                "the design space needs at least one Beefy node: the all-Beefy design is the reference",
            ));
        }
        Ok(Self {
            beefy,
            wimpy,
            max_beefy,
            max_wimpy,
        })
    }

    /// Number of designs in the grid (every `(b, w)` except `(0, 0)`).
    pub fn len(&self) -> usize {
        (self.max_beefy + 1) * (self.max_wimpy + 1) - 1
    }

    /// Whether the grid is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The reference design: all Beefy nodes, no Wimpy nodes.
    pub fn reference(&self) -> Result<ClusterSpec, CoreError> {
        Ok(ClusterSpec::homogeneous(
            self.beefy.clone(),
            self.max_beefy,
        )?)
    }

    /// Every design in the grid, row by row (`b` outer, `w` inner), the
    /// reference first.
    pub fn designs(&self) -> Result<Vec<ClusterSpec>, CoreError> {
        let mut designs = vec![self.reference()?];
        for b in (0..=self.max_beefy).rev() {
            for w in 0..=self.max_wimpy {
                if b + w == 0 || (b == self.max_beefy && w == 0) {
                    continue;
                }
                designs.push(ClusterSpec::heterogeneous(
                    self.beefy.clone(),
                    b,
                    self.wimpy.clone(),
                    w,
                )?);
            }
        }
        Ok(designs)
    }
}

/// A design the advisor recommends for a performance target.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Label of the recommended design (`"2B,2W"` convention).
    pub label: String,
    /// The design's normalized (performance, energy) point.
    pub point: NormalizedPoint,
    /// How the design executes the workload.
    pub mode: ExecutionMode,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} execution]: {}",
            self.label, self.mode, self.point
        )
    }
}

/// The advisor's full assessment of a design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpaceReport {
    /// Normalized (performance, energy) points for every feasible design,
    /// relative to the all-Beefy reference.
    pub series: NormalizedSeries,
    /// The uniform run records, reference first, labelled like the series
    /// points.
    pub records: Vec<RunRecord>,
    /// Designs the estimator refused to plan (hash table fits no execution
    /// mode), with the planner's reason.
    pub infeasible: Vec<(String, String)>,
}

impl DesignSpaceReport {
    /// The record for a labelled design, if it was feasible.
    pub fn record(&self, label: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.design == label)
    }

    /// The normalized point for a labelled design, if it was feasible.
    pub fn point(&self, label: &str) -> Option<&NormalizedPoint> {
        self.series
            .points()
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| p)
    }

    /// The SLA selection rule for serving sweeps: among feasible designs
    /// whose simulated 99th-percentile latency is at most `floor`, the one
    /// with the lowest absolute energy. `None` when no design's p99 clears
    /// the floor; an error when the records carry no serving statistics
    /// (the report was not evaluated under the `Serving` lens).
    pub fn cheapest_meeting_p99(&self, floor: Seconds) -> Result<Option<&RunRecord>, CoreError> {
        if self.records.iter().all(|r| r.serving.is_none()) {
            return Err(CoreError::invalid(
                "cheapest_meeting_p99 needs serving statistics — evaluate under the Serving lens",
            ));
        }
        Ok(self
            .records
            .iter()
            .filter(|record| {
                record
                    .serving
                    .as_ref()
                    .is_some_and(|stats| stats.p99 <= floor)
            })
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value())))
    }

    /// The availability selection rule for churn sweeps: among feasible
    /// designs whose simulated availability is at least `floor`, the one
    /// with the lowest absolute energy. A record without fault statistics
    /// ran fault-free and counts as availability 1.0. `None` when no
    /// design clears the floor; an error when the records carry no serving
    /// statistics at all (the report was not evaluated under the `Serving`
    /// lens).
    pub fn cheapest_meeting_availability(
        &self,
        floor: f64,
    ) -> Result<Option<&RunRecord>, CoreError> {
        if self.records.iter().all(|r| r.serving.is_none()) {
            return Err(CoreError::invalid(
                "cheapest_meeting_availability needs serving statistics — evaluate under the \
                 Serving lens",
            ));
        }
        Ok(self
            .records
            .iter()
            .filter(|record| {
                record.serving.as_ref().is_some_and(|stats| {
                    stats.faults.as_ref().map_or(1.0, |f| f.availability) >= floor
                })
            })
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value())))
    }

    /// The Section 6 selection rule: among feasible designs whose normalized
    /// performance is at least `min_performance`, the one with the lowest
    /// normalized energy.
    pub fn recommend(&self, min_performance: f64) -> Option<Recommendation> {
        let (label, point) = self.series.best_meeting_target(min_performance)?;
        // Series points and records are pushed in lockstep by
        // `DesignAdvisor::evaluate`.
        let mode = self
            .record(label)
            .expect("every series point has a record")
            .mode;
        Some(Recommendation {
            label: label.clone(),
            point: *point,
            mode,
        })
    }
}

/// The design-space advisor: any estimator plus the workload plan the
/// cluster will run.
pub struct DesignAdvisor {
    estimator: Box<dyn Estimator>,
    plans: Vec<WorkloadPlan>,
}

impl DesignAdvisor {
    /// An advisor ranking designs under the given estimator — measured,
    /// analytical, or behavioural.
    ///
    /// The advisor evaluates exactly one plan: the workload's *first*. For
    /// multi-plan workloads (e.g. a [`crate::ConcurrencySweep`]), rank each
    /// plan with its own advisor, or sweep them all through
    /// [`crate::Experiment`].
    pub fn new(estimator: impl Estimator + 'static, workload: &dyn Workload) -> Self {
        Self {
            estimator: Box::new(estimator),
            plans: workload.plans(),
        }
    }

    /// Convenience: the classic closed-form advisor over an already-built
    /// analytical model and a join strategy.
    pub fn analytical(model: AnalyticalModel, strategy: JoinStrategy) -> Self {
        Self {
            estimator: Box::new(Analytical),
            plans: vec![WorkloadPlan::sweep_join(*model.workload(), strategy)],
        }
    }

    /// The workload plan driving the evaluations (`None` for a degenerate
    /// workload that yielded no plans — evaluation then errors).
    pub fn plan(&self) -> Option<&WorkloadPlan> {
        self.plans.first()
    }

    /// Evaluate every design in `space` under the estimator, normalize
    /// against the all-Beefy reference, and report feasible points and
    /// infeasible designs.
    ///
    /// The reference design itself must be feasible; any other design the
    /// estimator refuses is recorded in [`DesignSpaceReport::infeasible`].
    pub fn evaluate(&self, space: &DesignSpace) -> Result<DesignSpaceReport, CoreError> {
        let plan = self
            .plans
            .first()
            .ok_or_else(|| CoreError::invalid("the advisor's workload yields no plans"))?;
        let series =
            crate::experiment::evaluate_series(self.estimator.as_ref(), plan, &space.designs()?)?;
        Ok(DesignSpaceReport {
            series: series.normalized,
            records: series.records,
            infeasible: series.infeasible,
        })
    }

    /// Evaluate an explicit list of candidate designs (the first is the
    /// normalization reference) instead of a full `(b, w)` grid — the shape
    /// serving sweeps use, where a handful of named designs compete under
    /// an SLA.
    pub fn evaluate_designs(
        &self,
        designs: &[ClusterSpec],
    ) -> Result<DesignSpaceReport, CoreError> {
        let plan = self
            .plans
            .first()
            .ok_or_else(|| CoreError::invalid("the advisor's workload yields no plans"))?;
        if designs.is_empty() {
            return Err(CoreError::invalid(
                "evaluate_designs needs at least one design",
            ));
        }
        let series = crate::experiment::evaluate_series(self.estimator.as_ref(), plan, designs)?;
        Ok(DesignSpaceReport {
            series: series.normalized,
            records: series.records,
            infeasible: series.infeasible,
        })
    }

    /// The SLA objective for serving sweeps: evaluate the candidate designs
    /// under the advisor's estimator (which must be a `Serving` lens so the
    /// records carry p99 latencies) and return the lowest-energy design
    /// whose simulated 99th-percentile latency clears `floor`. `None` when
    /// no design meets the SLA.
    pub fn cheapest_meeting_p99(
        &self,
        designs: &[ClusterSpec],
        floor: Seconds,
    ) -> Result<Option<RunRecord>, CoreError> {
        let report = self.evaluate_designs(designs)?;
        Ok(report.cheapest_meeting_p99(floor)?.cloned())
    }

    /// The availability objective for churn sweeps: evaluate the candidate
    /// designs under the advisor's estimator (a `Serving` lens whose
    /// workload carries a fault model) and return the lowest-energy design
    /// whose simulated availability is at least `floor`. `None` when no
    /// design clears the floor.
    pub fn cheapest_meeting_availability(
        &self,
        designs: &[ClusterSpec],
        floor: f64,
    ) -> Result<Option<RunRecord>, CoreError> {
        let report = self.evaluate_designs(designs)?;
        Ok(report.cheapest_meeting_availability(floor)?.cloned())
    }

    /// Evaluate `space` and apply the Section 6 selection rule for
    /// `min_performance`. `None` when no feasible design meets the target
    /// (cannot happen for targets ≤ 1: the reference always qualifies).
    pub fn recommend(
        &self,
        space: &DesignSpace,
        min_performance: f64,
    ) -> Result<Option<Recommendation>, CoreError> {
        Ok(self.evaluate(space)?.recommend(min_performance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Behavioural;
    use crate::model::SweepJoin;
    use eedc_pstore::JoinQuerySpec;
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};

    fn advisor() -> DesignAdvisor {
        DesignAdvisor::analytical(
            AnalyticalModel::section_5_4(JoinQuerySpec::q3_dual_shuffle()).unwrap(),
            JoinStrategy::DualShuffle,
        )
    }

    #[test]
    fn design_space_enumerates_the_grid() {
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 2, 2).unwrap();
        assert_eq!(space.len(), 8);
        assert!(!space.is_empty());
        let designs = space.designs().unwrap();
        assert_eq!(designs.len(), 8);
        assert_eq!(designs[0].label(), "2B,0W");
        let labels: Vec<String> = designs.iter().map(|d| d.label()).collect();
        for expected in ["2B,0W", "2B,2W", "1B,0W", "1B,2W", "0B,1W", "0B,2W"] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
        assert_eq!(space.reference().unwrap().label(), "2B,0W");
    }

    #[test]
    fn design_space_validates_inputs() {
        assert!(DesignSpace::new(laptop_b(), laptop_b(), 2, 2).is_err());
        assert!(DesignSpace::new(cluster_v_node(), cluster_v_node(), 2, 2).is_err());
        assert!(DesignSpace::new(cluster_v_node(), laptop_b(), 0, 4).is_err());
    }

    #[test]
    fn evaluation_accounts_for_every_design() {
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 4, 4).unwrap();
        let report = advisor().evaluate(&space).unwrap();
        // Every grid point is either a feasible series point or recorded
        // infeasible.
        assert_eq!(
            report.series.points().len() + report.infeasible.len(),
            space.len()
        );
        assert_eq!(report.records.len(), report.series.points().len());
        // The 70 GB dual-shuffle hash table fits no all-Wimpy design here
        // (17.5 GB+ per 8 GB laptop), so the infeasible list is non-empty.
        assert!(!report.infeasible.is_empty());
        assert!(report
            .infeasible
            .iter()
            .any(|(label, _)| label.starts_with("0B,")));
        // The reference leads the records and sits at (1, 1).
        assert_eq!(report.records[0].design, "4B,0W");
        assert_eq!(report.series.points()[0].1, NormalizedPoint::reference());
        assert_eq!(
            report.records[0].normalized,
            Some(NormalizedPoint::reference())
        );
    }

    #[test]
    fn recommendation_meets_the_target_with_minimal_energy() {
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 4, 8).unwrap();
        let report = advisor().evaluate(&space).unwrap();
        for target in [0.9, 0.75, 0.5] {
            let pick = report
                .recommend(target)
                .expect("reference always qualifies");
            assert!(
                pick.point.performance + 1e-9 >= target,
                "{target}: {pick} below the floor"
            );
            for (label, point) in report.series.points() {
                if point.performance + 1e-9 >= target {
                    assert!(
                        pick.point.energy <= point.energy + 1e-9,
                        "{target}: {label} beats the pick"
                    );
                }
            }
        }
        // Mixed designs with more total nodes than the reference can beat it
        // (performance above 1.0) — but a truly unreachable target yields no
        // recommendation.
        assert!(report
            .series
            .highest_performance()
            .is_some_and(|(_, p)| p.performance > 1.0));
        assert!(report.recommend(1e9).is_none());
    }

    #[test]
    fn recommend_convenience_matches_evaluate() {
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 3, 3).unwrap();
        let adv = advisor();
        let direct = adv.recommend(&space, 0.75).unwrap();
        let via_report = adv.evaluate(&space).unwrap().recommend(0.75);
        assert_eq!(direct, via_report);
        assert!(direct.unwrap().to_string().contains("execution"));
    }

    #[test]
    fn empty_workloads_error_instead_of_panicking() {
        // A degenerate workload with no plans must surface as an error from
        // evaluation, not a panic in the constructor.
        let base = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        let empty = crate::ConcurrencySweep::new(base, []);
        let adv = DesignAdvisor::new(Analytical, &empty);
        assert!(adv.plan().is_none());
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 2, 2).unwrap();
        let err = adv.evaluate(&space).unwrap_err();
        assert!(err.to_string().contains("no plans"), "{err}");
    }

    #[test]
    fn cheapest_meeting_p99_picks_the_lowest_energy_design_that_clears_the_floor() {
        use crate::experiment::{Analytical, Serving};
        use crate::workload::ServingWorkload;
        use eedc_pstore::JoinQuerySpec;

        // The acceptance sweep: three homogeneous designs under the Serving
        // lens. Smaller clusters serve slower (longer p99) but burn less
        // energy over the window, so an SLA floor slices the sweep.
        let sweep = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        let designs: Vec<ClusterSpec> = [16, 8, 4]
            .map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).unwrap())
            .to_vec();
        let slowest = Analytical
            .estimate(&sweep.plans()[0], &designs[2])
            .unwrap()
            .response_time
            .value();
        let workload = ServingWorkload::new(&sweep, 0.2 / slowest, Seconds(500.0 * slowest), 2_024);
        let advisor = DesignAdvisor::new(Serving::fcfs(), &workload);
        let report = advisor.evaluate_designs(&designs).unwrap();
        assert_eq!(report.records.len(), 3);
        let p99s: Vec<f64> = report
            .records
            .iter()
            .map(|r| r.serving.as_ref().unwrap().p99.value())
            .collect();
        assert!(
            p99s[0] < p99s[1] && p99s[1] < p99s[2],
            "p99 must grow as the design shrinks: {p99s:?}"
        );

        // A floor between the 8-node and 4-node tails: the 4-node design is
        // cheapest but misses the SLA, so the pick must clear the floor and
        // be the cheapest among the qualifiers.
        let floor = Seconds((p99s[1] + p99s[2]) / 2.0);
        let pick = report
            .cheapest_meeting_p99(floor)
            .unwrap()
            .expect("two designs clear this floor");
        let pick_stats = pick.serving.as_ref().unwrap();
        assert!(
            pick_stats.p99 <= floor,
            "pick p99 {:?} above the floor {floor:?}",
            pick_stats.p99
        );
        for record in &report.records {
            if record.serving.as_ref().unwrap().p99 <= floor {
                assert!(
                    pick.energy <= record.energy,
                    "{} beats the pick on energy",
                    record.design
                );
            }
        }
        // The one-call advisor objective agrees with the report method.
        let direct = advisor
            .cheapest_meeting_p99(&designs, floor)
            .unwrap()
            .unwrap();
        assert_eq!(direct.design, pick.design);

        // An unreachable floor yields no design; a non-serving estimator is
        // a caller error, not an empty answer.
        assert!(report
            .cheapest_meeting_p99(Seconds(1e-9))
            .unwrap()
            .is_none());
        let plain = DesignAdvisor::new(Analytical, &sweep);
        let err = plain.cheapest_meeting_p99(&designs, floor).unwrap_err();
        assert!(err.to_string().contains("Serving"), "{err}");
        // And an empty design list is rejected up front.
        assert!(advisor.evaluate_designs(&[]).is_err());
    }

    #[test]
    fn cheapest_meeting_availability_agrees_with_brute_force() {
        use crate::experiment::{Analytical, Serving};
        use crate::workload::ServingWorkload;
        use eedc_dbmsim::FaultModel;
        use eedc_simkit::units::Seconds;

        // Three homogeneous designs under a per-node hazard rate: larger
        // fleets fail more often (lower availability) but serve faster, so
        // an availability floor slices the sweep. The rate is expressed in
        // failures per node-hour such that even the 4-node design expects a
        // couple of dozen failures over the window.
        let sweep = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        let designs: Vec<ClusterSpec> = [16, 8, 4]
            .map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).unwrap())
            .to_vec();
        let slowest = Analytical
            .estimate(&sweep.plans()[0], &designs[2])
            .unwrap()
            .response_time
            .value();
        let window = Seconds(200.0 * slowest);
        let rate = 20.0 * 3_600.0 / (4.0 * window.value());
        let model = FaultModel::new(rate).repair_time(Seconds(0.2 * slowest));
        let workload =
            ServingWorkload::new(&sweep, 0.2 / slowest, window, 2_024).with_faults(model);
        let advisor = DesignAdvisor::new(Serving::fcfs(), &workload);
        let report = advisor.evaluate_designs(&designs).unwrap();
        assert_eq!(report.records.len(), 3);
        let avail_of = |record: &RunRecord| {
            record
                .serving
                .as_ref()
                .unwrap()
                .faults
                .as_ref()
                .expect("churned records carry fault stats")
                .availability
        };
        let availabilities: Vec<f64> = report.records.iter().map(&avail_of).collect();
        assert!(availabilities.iter().all(|&a| a > 0.0 && a < 1.0));
        let lo = availabilities.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let hi = availabilities.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(lo < hi, "the hazard must bite the designs differently");

        // A floor strictly between the worst and best availability: at
        // least one design qualifies and at least one is excluded. The
        // method's pick must equal the brute-force minimum-energy design
        // among the qualifiers.
        let floor = (lo + hi) / 2.0;
        let brute = report
            .records
            .iter()
            .filter(|r| avail_of(r) >= floor)
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value()))
            .expect("the best-availability design qualifies");
        let pick = report
            .cheapest_meeting_availability(floor)
            .unwrap()
            .expect("at least one design clears the floor");
        assert_eq!(pick.design, brute.design);
        assert_eq!(pick.energy, brute.energy);
        // The one-call advisor objective agrees with the report method.
        let direct = advisor
            .cheapest_meeting_availability(&designs, floor)
            .unwrap()
            .unwrap();
        assert_eq!(direct.design, pick.design);

        // An unreachable floor yields no design; a non-serving estimator is
        // a caller error, not an empty answer.
        assert!(report
            .cheapest_meeting_availability(1.01)
            .unwrap()
            .is_none());
        let plain = DesignAdvisor::new(Analytical, &sweep);
        let err = plain
            .cheapest_meeting_availability(&designs, floor)
            .unwrap_err();
        assert!(err.to_string().contains("Serving"), "{err}");
    }

    #[test]
    fn advisor_ranks_designs_under_any_estimator() {
        // The tentpole requirement: the Section 6 selection rule is
        // estimator-agnostic. Run the same space under the behavioural lens
        // — a completely different evaluation path — and the report still
        // accounts for every design and recommends a qualifying one.
        let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        let adv = DesignAdvisor::new(Behavioural::default(), &workload);
        assert_eq!(adv.plan().unwrap().strategy, JoinStrategy::DualShuffle);
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), 4, 2).unwrap();
        let report = adv.evaluate(&space).unwrap();
        assert_eq!(
            report.series.points().len() + report.infeasible.len(),
            space.len()
        );
        let pick = report.recommend(0.75).expect("reference qualifies");
        assert!(pick.point.performance + 1e-9 >= 0.75);
        assert_eq!(report.records[0].estimator, "behavioural");
    }
}
