//! Error type of the analytical model and advisor.

use eedc_pstore::PStoreError;
use eedc_simkit::error::SimError;
use std::fmt;

/// Errors raised by the analytical model and the design-space advisor.
#[derive(Debug)]
pub enum CoreError {
    /// A workload or design-space parameter is out of range.
    Invalid(String),
    /// An error bubbled up from the P-store planning layer (most commonly: a
    /// hash table that fits no execution mode on the candidate design).
    Runtime(PStoreError),
    /// An error from the metrics layer (degenerate reference measurement).
    Metrics(SimError),
}

impl CoreError {
    /// An invalid-parameter error with the given message.
    pub fn invalid(message: impl Into<String>) -> Self {
        CoreError::Invalid(message.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Invalid(message) => write!(f, "invalid model input: {message}"),
            CoreError::Runtime(err) => write!(f, "{err}"),
            CoreError::Metrics(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Invalid(_) => None,
            CoreError::Runtime(err) => Some(err),
            CoreError::Metrics(err) => Some(err),
        }
    }
}

impl From<PStoreError> for CoreError {
    fn from(err: PStoreError) -> Self {
        CoreError::Runtime(err)
    }
}

impl From<SimError> for CoreError {
    fn from(err: SimError) -> Self {
        CoreError::Metrics(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let invalid = CoreError::invalid("bad selectivity");
        assert!(invalid.to_string().contains("bad selectivity"));
        assert!(std::error::Error::source(&invalid).is_none());

        let runtime: CoreError = PStoreError::planning("does not fit").into();
        assert!(runtime.to_string().contains("does not fit"));
        assert!(std::error::Error::source(&runtime).is_some());

        let metrics: CoreError = SimError::invalid("bad reference").into();
        assert!(metrics.to_string().contains("bad reference"));
        assert!(std::error::Error::source(&metrics).is_some());
    }
}
