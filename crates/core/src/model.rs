//! The closed-form analytical cluster design model of Section 5.4.
//!
//! Given a `(b Beefy, w Wimpy)` cluster design and the parameters of the
//! sweep join — 700 GB ORDERS ⋈ 2.8 TB LINEITEM in the paper's sweeps — the
//! model predicts the response time and energy of each execution phase from
//! first principles, with no data generation and no flow simulation:
//!
//! * **scan** — every node scans its `1/n` share of the input at its CPU
//!   pipeline rate (`C_B` / `C_W`; the disk rate `I` when the tables are not
//!   memory resident),
//! * **network** — the shuffle or broadcast volume each node must push
//!   through its egress port and pull through its ingress port, divided by
//!   the per-node port bandwidth `L`. This is exactly the completion time of
//!   the max–min fair allocation `eedc-netsim` computes for balanced
//!   transfer patterns, closed form,
//! * **compute** — the bytes each consumer builds into or probes against its
//!   hash table, again at the CPU pipeline rate,
//! * a phase lasts as long as its slowest component (the three are
//!   pipelined), and per-node energy follows the paper's utilization model:
//!   `u = G + rate / C`, wall power from the published regression models,
//!   energy = power × duration.
//!
//! Mode selection — homogeneous versus heterogeneous execution — reuses
//! [`eedc_pstore::select_execution_mode`], the *same* rule the runtime
//! applies, so the model and the measured runtime agree on which designs
//! demote their Wimpy nodes. The integration test in
//! `tests/model_validation.rs` holds the model to within 15% of measured
//! `PStoreCluster` points.

use crate::error::CoreError;
use crate::params;
use eedc_pstore::cluster::select_execution_mode;
use eedc_pstore::stats::{Bottleneck, ExecutionMode};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinSkew, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::metrics::Measurement;
use eedc_simkit::units::{Joules, Megabytes, MegabytesPerSec, Seconds};
use eedc_simkit::NodeSpec;
use serde::{Deserialize, Serialize};

/// Workload parameters of the modeled two-table sweep join.
///
/// Following the paper's convention, the build side is ORDERS and the probe
/// side is LINEITEM; both inputs are spread uniformly across the cluster
/// nodes (round-robin / hash placement makes the per-node share `1/n` of the
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepJoin {
    /// Total build-side (ORDERS) working set.
    pub build_bytes: Megabytes,
    /// Total probe-side (LINEITEM) working set.
    pub probe_bytes: Megabytes,
    /// Selectivity of the predicate on the build input, in `(0, 1]`.
    pub build_selectivity: f64,
    /// Selectivity of the predicate on the probe input, in `(0, 1]`.
    pub probe_selectivity: f64,
    /// Hash-table bytes per qualifying build-side byte.
    pub hash_table_expansion: f64,
    /// Fraction of node memory reserved for everything that is not the
    /// build-side hash table.
    pub hash_table_headroom: f64,
    /// Whether the tables are memory resident (scans run at the CPU pipeline
    /// rate) or disk resident (scans gated by the storage bandwidth).
    pub in_memory: bool,
    /// Number of identical concurrent queries sharing the cluster.
    pub concurrency: usize,
}

impl SweepJoin {
    /// The Section 5.4 model sweep: a 700 GB ORDERS ⋈ 2.8 TB LINEITEM join
    /// with the given predicate selectivities, memory-resident, with the
    /// default hash-table sizing of the P-store runtime.
    pub fn section_5_4(query: JoinQuerySpec) -> Self {
        let defaults = RunOptions::default();
        Self {
            build_bytes: params::SWEEP_ORDERS_WORKING_SET,
            probe_bytes: params::SWEEP_LINEITEM_WORKING_SET,
            build_selectivity: query.build_selectivity,
            probe_selectivity: query.probe_selectivity,
            hash_table_expansion: defaults.hash_table_expansion,
            hash_table_headroom: defaults.hash_table_headroom,
            in_memory: defaults.in_memory,
            concurrency: 1,
        }
    }

    /// A workload that mirrors what a loaded [`PStoreCluster`] actually
    /// executes for `query`: the nominal-scale working sets of the generated
    /// tables and the *realized* predicate selectivities (the engine-scale
    /// cutoffs quantize the requested ones). Predictions built from this
    /// workload are directly comparable to the cluster's measured points.
    pub fn matching_cluster(
        cluster: &PStoreCluster,
        query: &JoinQuerySpec,
    ) -> Result<Self, CoreError> {
        let build_bytes = cluster.nominal_build_bytes();
        let probe_bytes = cluster.nominal_probe_bytes();
        if build_bytes.value() <= 0.0 || probe_bytes.value() <= 0.0 {
            return Err(CoreError::invalid("cluster holds empty tables"));
        }
        let options = cluster.options();
        Ok(Self {
            build_bytes,
            probe_bytes,
            build_selectivity: cluster.nominal_qualifying_build_bytes(query)? / build_bytes,
            probe_selectivity: cluster.nominal_qualifying_probe_bytes(query)? / probe_bytes,
            hash_table_expansion: options.hash_table_expansion,
            hash_table_headroom: options.hash_table_headroom,
            in_memory: options.in_memory,
            concurrency: 1,
        })
    }

    /// Run `concurrency` identical queries instead of one.
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency;
        self
    }

    /// Total build-side hash-table footprint across all concurrent queries.
    pub fn total_hash_table(&self) -> Megabytes {
        self.build_bytes
            * self.build_selectivity
            * self.hash_table_expansion
            * self.concurrency as f64
    }

    fn validate(&self) -> Result<(), CoreError> {
        for (label, v) in [
            ("build working set", self.build_bytes.value()),
            ("probe working set", self.probe_bytes.value()),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::invalid(format!(
                    "{label} must be positive and finite, got {v}"
                )));
            }
        }
        for (label, s) in [
            ("build", self.build_selectivity),
            ("probe", self.probe_selectivity),
        ] {
            if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                return Err(CoreError::invalid(format!(
                    "{label} selectivity {s} outside (0, 1]"
                )));
            }
        }
        if !(self.hash_table_expansion.is_finite() && self.hash_table_expansion >= 1.0) {
            return Err(CoreError::invalid(
                "hash table expansion must be at least 1",
            ));
        }
        if !(0.0..1.0).contains(&self.hash_table_headroom) {
            return Err(CoreError::invalid("hash table headroom must be in [0, 1)"));
        }
        if self.concurrency == 0 {
            return Err(CoreError::invalid("concurrency must be at least 1"));
        }
        Ok(())
    }
}

/// One predicted execution phase, shaped like the runtime's
/// [`eedc_pstore::PhaseStats`] so measured and modeled breakdowns line up
/// column for column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePrediction {
    /// Phase label (`"build"` / `"probe"`).
    pub label: String,
    /// Predicted wall-clock duration of the phase.
    pub duration: Seconds,
    /// Predicted cluster energy over the phase.
    pub energy: Joules,
    /// Bytes scanned across the cluster.
    pub bytes_scanned: Megabytes,
    /// Bytes predicted to cross the network.
    pub bytes_over_network: Megabytes,
    /// Time the slowest producer spends scanning.
    pub scan_time: Seconds,
    /// Time the most loaded port spends transferring.
    pub network_time: Seconds,
    /// Time the slowest consumer spends building/probing.
    pub compute_time: Seconds,
    /// The component predicted to bound the phase.
    pub bottleneck: Bottleneck,
    /// Predicted per-node CPU utilization, in cluster node order (mirrors
    /// `PhaseStats::node_utilization`).
    pub node_utilization: Vec<f64>,
    /// Predicted per-node energy, in cluster node order; sums to `energy`.
    pub node_energy: Vec<Joules>,
    /// Time each node's port spends transferring (its busier direction), in
    /// cluster node order; `network_time` is the maximum. The closed form
    /// knows the exact per-node egress/ingress volumes, so trace synthesis
    /// (the `Traced` estimator) carries true per-node port activity instead
    /// of assuming every node moved the hot-port volume.
    pub node_network_time: Vec<Seconds>,
}

impl PhasePrediction {
    /// Fraction of the phase the slowest producer spends scanning, in
    /// `[0, 1]` — the scan busy share a utilization-trace synthesis carries
    /// (mirrors `PhaseStats::scan_fraction`).
    pub fn scan_fraction(&self) -> f64 {
        self.busy_fraction(self.scan_time)
    }

    /// Fraction of the phase node `id`'s port spends transferring, in
    /// `[0, 1]`.
    pub fn node_network_fraction(&self, id: usize) -> f64 {
        self.busy_fraction(self.node_network_time[id])
    }

    fn busy_fraction(&self, busy: Seconds) -> f64 {
        if self.duration.value() <= f64::EPSILON {
            return 0.0;
        }
        (busy.value() / self.duration.value()).clamp(0.0, 1.0)
    }
}

/// The model's prediction for one design executing the sweep join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPrediction {
    /// Label of the predicted design (`"2B,2W"` convention).
    pub cluster_label: String,
    /// The join strategy modeled.
    pub strategy: JoinStrategy,
    /// Homogeneous or heterogeneous execution, per the shared selection rule.
    pub mode: ExecutionMode,
    /// Per-phase predictions, in execution order (build, probe).
    pub phases: Vec<PhasePrediction>,
}

impl ModelPrediction {
    /// Predicted query response time (phases are sequential).
    pub fn response_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Predicted total cluster energy.
    pub fn energy(&self) -> Joules {
        self.phases.iter().map(|p| p.energy).sum()
    }

    /// Collapse into a [`Measurement`] for normalization against measured or
    /// modeled reference points.
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.response_time(), self.energy())
    }

    /// Predicted bytes over the network across all phases.
    pub fn bytes_over_network(&self) -> Megabytes {
        self.phases.iter().map(|p| p.bytes_over_network).sum()
    }

    /// The phase with the given label, if present.
    pub fn phase(&self, label: &str) -> Option<&PhasePrediction> {
        self.phases.iter().find(|p| p.label == label)
    }
}

/// Per-node data-movement volumes of one phase (the scanned volumes are
/// movement-independent and evaluated separately).
struct MovementVolumes {
    /// Bytes each node pushes through its hash-table build/probe path.
    computed: Vec<Megabytes>,
    /// Network bytes each node sends (local shares excluded).
    egress: Vec<Megabytes>,
    /// Network bytes each node receives.
    ingress: Vec<Megabytes>,
}

impl MovementVolumes {
    /// No movement at all: every node consumes its own qualifying bytes.
    fn local(computed: Vec<Megabytes>) -> Self {
        let n = computed.len();
        Self {
            computed,
            egress: vec![Megabytes::zero(); n],
            ingress: vec![Megabytes::zero(); n],
        }
    }
}

/// Closed-form per-node volumes of a hash shuffle: every node sends its
/// qualifying bytes split across the destinations by the hash-partition
/// weights (uniform `1/d` when `weights` is `None`); the share hashed to the
/// local node never crosses the network (mirrors
/// `eedc_netsim::shuffle_flows`).
fn shuffle_volumes(
    qualifying: &[Megabytes],
    destinations: &[usize],
    weights: Option<&[f64]>,
) -> MovementVolumes {
    let n = qualifying.len();
    let total: Megabytes = qualifying.iter().copied().sum();
    // Per-node destination weight: 0 for non-destinations, the partition
    // weight (uniform share without skew) for destinations.
    let mut weight = vec![0.0; n];
    for (slot, &id) in destinations.iter().enumerate() {
        weight[id] = match weights {
            Some(w) => w[slot],
            None => 1.0 / destinations.len() as f64,
        };
    }
    let mut egress = vec![Megabytes::zero(); n];
    let mut ingress = vec![Megabytes::zero(); n];
    let mut computed = vec![Megabytes::zero(); n];
    for (id, &q) in qualifying.iter().enumerate() {
        // Everything except the share hashed back to the local node.
        egress[id] = q * (1.0 - weight[id]);
    }
    for &id in destinations {
        computed[id] = total * weight[id];
        ingress[id] = (total - qualifying[id]) * weight[id];
    }
    MovementVolumes {
        computed,
        egress,
        ingress,
    }
}

/// Closed-form per-node volumes of a co-partitioned (local) layout under
/// hash-partition weights: node `j` holds `total × w_j` of the qualifying
/// bytes, and nothing crosses the network.
fn local_weighted_volumes(qualifying: &[Megabytes], weights: &[f64]) -> MovementVolumes {
    let total: Megabytes = qualifying.iter().copied().sum();
    MovementVolumes::local(weights.iter().map(|&w| total * w).collect())
}

/// Closed-form per-node volumes of a broadcast: every node sends its full
/// qualifying bytes to every destination other than itself (mirrors
/// `eedc_netsim::broadcast_flows`).
fn broadcast_volumes(qualifying: &[Megabytes], destinations: &[usize]) -> MovementVolumes {
    let n = qualifying.len();
    let d = destinations.len() as f64;
    let total: Megabytes = qualifying.iter().copied().sum();
    let is_destination: Vec<bool> = {
        let mut v = vec![false; n];
        for &id in destinations {
            v[id] = true;
        }
        v
    };
    let mut egress = vec![Megabytes::zero(); n];
    let mut ingress = vec![Megabytes::zero(); n];
    let mut computed = vec![Megabytes::zero(); n];
    for (id, &q) in qualifying.iter().enumerate() {
        let copies = if is_destination[id] { d - 1.0 } else { d };
        egress[id] = q * copies;
    }
    for &id in destinations {
        computed[id] = total;
        ingress[id] = total - qualifying[id];
    }
    MovementVolumes {
        computed,
        egress,
        ingress,
    }
}

/// The Section 5.4 analytical model: closed-form phase predictions for any
/// cluster design running a [`SweepJoin`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalModel {
    workload: SweepJoin,
}

impl AnalyticalModel {
    /// Build a model for the given workload, validating its parameters.
    pub fn new(workload: SweepJoin) -> Result<Self, CoreError> {
        workload.validate()?;
        Ok(Self { workload })
    }

    /// A model of the paper's Section 5.4 sweep join. Errs when the query's
    /// selectivities are outside `(0, 1]` — `JoinQuerySpec` itself does not
    /// validate them.
    pub fn section_5_4(query: JoinQuerySpec) -> Result<Self, CoreError> {
        Self::new(SweepJoin::section_5_4(query))
    }

    /// The workload being modeled.
    pub fn workload(&self) -> &SweepJoin {
        &self.workload
    }

    /// Predict the per-phase response time and energy of `design` executing
    /// the workload under `strategy`.
    ///
    /// Fails when the build-side hash table fits no execution mode on the
    /// design — the same designs the P-store runtime refuses to plan.
    pub fn predict(
        &self,
        design: &ClusterSpec,
        strategy: JoinStrategy,
    ) -> Result<ModelPrediction, CoreError> {
        self.predict_skewed(design, strategy, None)
    }

    /// Like [`predict`](Self::predict), but with the join keys following a
    /// Zipf skew: hash-partitioned movement routes each destination its Zipf
    /// partition weight instead of the uniform `1/d` share, mirroring the
    /// [`eedc_pstore::RunOptions::skew`] hook of the runtime. Broadcast
    /// replication is unaffected by key skew.
    pub fn predict_skewed(
        &self,
        design: &ClusterSpec,
        strategy: JoinStrategy,
        skew: Option<&JoinSkew>,
    ) -> Result<ModelPrediction, CoreError> {
        let w = &self.workload;
        let nodes = design.nodes();
        let n = nodes.len();
        let share = 1.0 / n as f64;

        let (mode, destinations) =
            select_execution_mode(nodes, strategy, w.total_hash_table(), w.hash_table_headroom)?;
        // Per-destination hash-partition weights (None degenerates to the
        // uniform split inside the volume helpers).
        let weights = skew
            .filter(|s| !s.is_uniform())
            .map(|s| s.partition_weights(destinations.len()));
        let weights = weights.as_deref();

        // ---- Build phase: scan + filter ORDERS, move it, build hash tables.
        let build_scanned = vec![w.build_bytes * share; n];
        let build_qualifying = vec![w.build_bytes * (share * w.build_selectivity); n];
        let build = match strategy {
            JoinStrategy::DualShuffle => shuffle_volumes(&build_qualifying, &destinations, weights),
            JoinStrategy::Broadcast => broadcast_volumes(&build_qualifying, &destinations),
            JoinStrategy::PrePartitioned => match weights {
                Some(w) => local_weighted_volumes(&build_qualifying, w),
                None => MovementVolumes::local(build_qualifying),
            },
        };
        let build_phase = self.phase(nodes, "build", &build_scanned, &build);

        // ---- Probe phase: scan + filter LINEITEM, move it, probe.
        let probe_scanned = vec![w.probe_bytes * share; n];
        let probe_qualifying = vec![w.probe_bytes * (share * w.probe_selectivity); n];
        let probe = match (strategy, mode) {
            (JoinStrategy::DualShuffle, _)
            | (JoinStrategy::Broadcast, ExecutionMode::Heterogeneous) => {
                shuffle_volumes(&probe_qualifying, &destinations, weights)
            }
            (JoinStrategy::PrePartitioned, _) => match weights {
                Some(w) => local_weighted_volumes(&probe_qualifying, w),
                None => MovementVolumes::local(probe_qualifying),
            },
            (JoinStrategy::Broadcast, ExecutionMode::Homogeneous) => {
                MovementVolumes::local(probe_qualifying)
            }
        };
        let probe_phase = self.phase(nodes, "probe", &probe_scanned, &probe);

        Ok(ModelPrediction {
            cluster_label: design.label(),
            strategy,
            mode,
            phases: vec![build_phase, probe_phase],
        })
    }

    /// Evaluate one phase: scanning, transfer, and compute are pipelined, so
    /// the phase lasts as long as its slowest component; node energy follows
    /// from the rate each node sustains over that duration. This mirrors the
    /// runtime's `PStoreCluster::phase_stats` term for term, with the flow
    /// simulation replaced by the per-port closed form.
    fn phase(
        &self,
        nodes: &[NodeSpec],
        label: &str,
        scanned: &[Megabytes],
        movement: &MovementVolumes,
    ) -> PhasePrediction {
        let batch = self.workload.concurrency as f64;
        let mut scan_time = Seconds::zero();
        let mut network_time = Seconds::zero();
        let mut compute_time = Seconds::zero();
        let mut node_network_time = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let scan_rate = if self.workload.in_memory {
                node.cpu_bandwidth
            } else {
                node.disk_bandwidth.min(node.cpu_bandwidth)
            };
            scan_time = scan_time.max(scanned[id] * batch / scan_rate);
            compute_time = compute_time.max(movement.computed[id] * batch / node.cpu_bandwidth);
            let port = movement.egress[id].max(movement.ingress[id]);
            let port_time = port * batch / node.network_bandwidth;
            node_network_time.push(port_time);
            network_time = network_time.max(port_time);
        }

        let duration = network_time.max(scan_time).max(compute_time);
        let bottleneck = if network_time >= scan_time && network_time >= compute_time {
            Bottleneck::Network
        } else if scan_time >= compute_time {
            Bottleneck::Scan
        } else {
            Bottleneck::Compute
        };

        let mut energy = Joules::zero();
        let mut node_utilization = Vec::with_capacity(nodes.len());
        let mut node_energy = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let processed = (scanned[id] + movement.computed[id]) * batch;
            let rate = if duration.value() > f64::EPSILON {
                processed / duration
            } else {
                MegabytesPerSec::zero()
            };
            let utilization = node.utilization_at_rate(rate);
            node_utilization.push(utilization);
            let joules = node.power_at(utilization) * duration;
            node_energy.push(joules);
            energy += joules;
        }

        PhasePrediction {
            label: label.into(),
            duration,
            energy,
            bytes_scanned: scanned.iter().copied().sum::<Megabytes>() * batch,
            bytes_over_network: movement.egress.iter().copied().sum::<Megabytes>() * batch,
            scan_time,
            network_time,
            compute_time,
            bottleneck,
            node_utilization,
            node_energy,
            node_network_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};

    fn q3_model() -> AnalyticalModel {
        AnalyticalModel::section_5_4(JoinQuerySpec::q3_dual_shuffle()).unwrap()
    }

    fn homogeneous(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(cluster_v_node(), n).unwrap()
    }

    #[test]
    fn section_5_4_workload_carries_the_published_sizes() {
        let w = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        assert_eq!(w.build_bytes.as_gigabytes(), 700.0);
        assert_eq!(w.probe_bytes.as_gigabytes(), 2800.0);
        assert_eq!(w.concurrency, 1);
        // 5% of 700 GB × expansion 2 = 70 GB of hash table.
        assert!((w.total_hash_table().as_gigabytes() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn workload_validation_rejects_bad_parameters() {
        let good = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
        assert!(AnalyticalModel::new(good).is_ok());
        for bad in [
            SweepJoin {
                build_bytes: Megabytes(0.0),
                ..good
            },
            SweepJoin {
                probe_selectivity: 0.0,
                ..good
            },
            SweepJoin {
                build_selectivity: 1.5,
                ..good
            },
            SweepJoin {
                hash_table_expansion: 0.5,
                ..good
            },
            SweepJoin {
                hash_table_headroom: 1.0,
                ..good
            },
            SweepJoin {
                concurrency: 0,
                ..good
            },
        ] {
            assert!(AnalyticalModel::new(bad).is_err(), "{bad:?}");
        }
        // JoinQuerySpec does not validate its selectivities, so the
        // convenience constructor must surface the error rather than panic.
        assert!(AnalyticalModel::section_5_4(JoinQuerySpec::new(0.0, 0.05)).is_err());
        assert!(AnalyticalModel::section_5_4(JoinQuerySpec::new(0.05, f64::NAN)).is_err());
    }

    #[test]
    fn dual_shuffle_is_network_bound_and_slows_as_nodes_shrink() {
        // The paper's central observation, closed form: with memory-resident
        // data the repartitioning join is gated by the interconnect, and the
        // per-port shuffle volume grows as the cluster shrinks.
        let model = q3_model();
        let p16 = model
            .predict(&homogeneous(16), JoinStrategy::DualShuffle)
            .unwrap();
        let p4 = model
            .predict(&homogeneous(4), JoinStrategy::DualShuffle)
            .unwrap();
        assert_eq!(p16.mode, ExecutionMode::Homogeneous);
        for phase in &p16.phases {
            assert_eq!(phase.bottleneck, Bottleneck::Network);
            assert!(phase.energy.value() > 0.0);
        }
        assert!(p4.response_time() > p16.response_time());
        // Energy does NOT shrink proportionally: the smaller cluster runs
        // longer at low utilization (the energy-proportionality gap).
        assert!(p4.energy().value() > p16.energy().value() * 0.25);
        assert_eq!(p16.cluster_label, "16B,0W");
    }

    #[test]
    fn shuffle_volume_arithmetic_matches_the_exchange_operator() {
        // 4 nodes shuffling to all 4: each node keeps 1/4 of its data local,
        // so 3/4 of the total crosses the network.
        let q = vec![Megabytes(100.0); 4];
        let v = shuffle_volumes(&q, &[0, 1, 2, 3], None);
        let network: f64 = v.egress.iter().map(|b| b.value()).sum();
        assert!((network - 300.0).abs() < 1e-9);
        for id in 0..4 {
            assert!((v.egress[id].value() - 75.0).abs() < 1e-9);
            assert!((v.ingress[id].value() - 75.0).abs() < 1e-9);
            assert!((v.computed[id].value() - 100.0).abs() < 1e-9);
        }
        // Shuffling to a 2-node subset: sources outside the subset send
        // everything; each destination ingests (total - own)/2.
        let v = shuffle_volumes(&q, &[0, 1], None);
        assert!((v.egress[2].value() - 100.0).abs() < 1e-9);
        assert!((v.egress[0].value() - 50.0).abs() < 1e-9);
        assert!((v.ingress[0].value() - 150.0).abs() < 1e-9);
        assert!((v.computed[0].value() - 200.0).abs() < 1e-9);
        assert_eq!(v.computed[2], Megabytes::zero());
    }

    #[test]
    fn weighted_shuffle_routes_the_hot_partition_share() {
        // A 60/20/10/10 weight vector over 4 destinations: node 0 builds 60%
        // of the total and ingests 60% of everything it did not already hold.
        let q = vec![Megabytes(100.0); 4];
        let w = [0.6, 0.2, 0.1, 0.1];
        let v = shuffle_volumes(&q, &[0, 1, 2, 3], Some(&w));
        assert!((v.computed[0].value() - 240.0).abs() < 1e-9);
        assert!((v.computed[1].value() - 80.0).abs() < 1e-9);
        assert!((v.ingress[0].value() - 0.6 * 300.0).abs() < 1e-9);
        // Each source keeps only its locally-hashed share.
        assert!((v.egress[0].value() - 40.0).abs() < 1e-9);
        assert!((v.egress[2].value() - 90.0).abs() < 1e-9);
        // Total computed mass is conserved.
        let computed: f64 = v.computed.iter().map(|b| b.value()).sum();
        assert!((computed - 400.0).abs() < 1e-9);
        // The weighted local layout concentrates without any network volume.
        let v = local_weighted_volumes(&q, &w);
        assert!((v.computed[0].value() - 240.0).abs() < 1e-9);
        assert_eq!(v.egress[0], Megabytes::zero());
        assert_eq!(v.ingress[3], Megabytes::zero());
    }

    #[test]
    fn skewed_predictions_dominate_uniform_on_the_hot_node() {
        // Mirror of the runtime's skew test, in closed form: a heavy Zipf
        // skew over a tight key domain makes the hot node the bottleneck.
        // 20% build selectivity keeps the hash table feasible on 16 nodes
        // (280 GB / 16 = 17.5 GB per node) while the 50% probe side gives the
        // hash-partitioned volumes real weight next to the scans.
        let model =
            AnalyticalModel::new(SweepJoin::section_5_4(JoinQuerySpec::new(0.2, 0.5))).unwrap();
        let design = homogeneous(16);
        let skew = JoinSkew {
            theta: 1.5,
            key_domain: 1_000,
            seed: 7,
        };
        let uniform = model.predict(&design, JoinStrategy::DualShuffle).unwrap();
        let skewed = model
            .predict_skewed(&design, JoinStrategy::DualShuffle, Some(&skew))
            .unwrap();
        assert!(skewed.response_time() > uniform.response_time());
        for (sp, up) in skewed.phases.iter().zip(&uniform.phases) {
            let hot = |e: &[Joules]| e.iter().map(|j| j.value()).fold(0.0_f64, f64::max);
            assert!(hot(&sp.node_energy) > hot(&up.node_energy), "{}", sp.label);
            let total: f64 = sp.node_energy.iter().map(|j| j.value()).sum();
            assert!((total - sp.energy.value()).abs() < 1e-6 * total.max(1.0));
        }
        // A uniform (theta = 0) skew is exactly the unskewed prediction.
        let zero = model
            .predict_skewed(
                &design,
                JoinStrategy::DualShuffle,
                Some(&JoinSkew::zipf(0.0)),
            )
            .unwrap();
        assert_eq!(zero, uniform);
    }

    #[test]
    fn broadcast_volume_arithmetic_matches_the_exchange_operator() {
        // Broadcast to all 4 nodes: every destination receives the whole
        // table minus its own fragment — 3 × total over the network.
        let q = vec![Megabytes(100.0); 4];
        let v = broadcast_volumes(&q, &[0, 1, 2, 3]);
        let network: f64 = v.egress.iter().map(|b| b.value()).sum();
        assert!((network - 1200.0).abs() < 1e-9);
        for id in 0..4 {
            assert!((v.ingress[id].value() - 300.0).abs() < 1e-9);
            assert!((v.computed[id].value() - 400.0).abs() < 1e-9);
        }
        // Broadcast into a Beefy subset: Wimpy sources send |B| full copies.
        let v = broadcast_volumes(&q, &[0, 1]);
        assert!((v.egress[2].value() - 200.0).abs() < 1e-9);
        assert!((v.egress[0].value() - 100.0).abs() < 1e-9);
        assert!((v.ingress[1].value() - 300.0).abs() < 1e-9);
        assert_eq!(v.computed[3], Megabytes::zero());
    }

    #[test]
    fn oversized_broadcast_tables_demote_wimpy_nodes_in_the_model() {
        // The q3 broadcast build side is 1% of 700 GB × expansion 2 = 14 GB
        // of hash table per destination: fits the 48 GB Beefy nodes, not the
        // 8 GB laptops. The model must agree with the runtime's rule.
        let model = AnalyticalModel::section_5_4(JoinQuerySpec::q3_broadcast()).unwrap();
        let mixed = ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 6).unwrap();
        let p = model.predict(&mixed, JoinStrategy::Broadcast).unwrap();
        assert_eq!(p.mode, ExecutionMode::Heterogeneous);
        // Both phases cross the network: broadcast into the Beefy subset,
        // then the probe shuffle of the demoted producers.
        for phase in &p.phases {
            assert!(phase.bytes_over_network.value() > 0.0, "{}", phase.label);
        }
        // An all-Beefy design of the same size stays homogeneous.
        let p = model
            .predict(&homogeneous(8), JoinStrategy::Broadcast)
            .unwrap();
        assert_eq!(p.mode, ExecutionMode::Homogeneous);
    }

    #[test]
    fn infeasible_designs_are_errors_not_numbers() {
        // 70 GB of dual-shuffle hash table over 4 laptops is 17.5 GB per
        // node against 6.4 GB usable: no execution mode exists.
        let model = q3_model();
        let wimpy_only = ClusterSpec::homogeneous(laptop_b(), 4).unwrap();
        let err = model
            .predict(&wimpy_only, JoinStrategy::DualShuffle)
            .unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn prepartitioned_runs_without_network_time() {
        let model = q3_model();
        let p = model
            .predict(&homogeneous(8), JoinStrategy::PrePartitioned)
            .unwrap();
        assert_eq!(p.bytes_over_network(), Megabytes::zero());
        for phase in &p.phases {
            assert_eq!(phase.network_time, Seconds::zero());
            assert_ne!(phase.bottleneck, Bottleneck::Network);
            assert!(phase.energy.value() > 0.0);
        }
        // And it is faster than the repartitioning plan on the same design.
        let shuffle = model
            .predict(&homogeneous(8), JoinStrategy::DualShuffle)
            .unwrap();
        assert!(p.response_time() < shuffle.response_time());
    }

    #[test]
    fn concurrency_scales_volumes_linearly() {
        let one = q3_model();
        let two = AnalyticalModel::new(
            SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle()).with_concurrency(2),
        )
        .unwrap();
        let p1 = one
            .predict(&homogeneous(8), JoinStrategy::DualShuffle)
            .unwrap();
        let p2 = two
            .predict(&homogeneous(8), JoinStrategy::DualShuffle)
            .unwrap();
        // Twice the data through the same ports: twice the network time.
        let t1 = p1.phase("probe").unwrap().network_time.value();
        let t2 = p2.phase("probe").unwrap().network_time.value();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(p2.response_time().value() > p1.response_time().value());
    }
}
