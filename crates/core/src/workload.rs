//! The workload side of the experiment API: *what* is being evaluated,
//! independent of *how* it is evaluated.
//!
//! A [`Workload`] describes one or more join configurations as
//! [`WorkloadPlan`]s — a uniform descriptor every [`crate::Estimator`] knows
//! how to read. The same plan can be executed by the measured P-store
//! runtime, predicted by the Section 5.4 closed-form model, or extrapolated
//! by the Section 3 behavioural scaling law, which is exactly the
//! three-lens comparison the paper's figures are built on.
//!
//! Implementations:
//!
//! * [`SweepJoin`] — the paper's two-table sweep join (one plan),
//! * [`ConcurrencySweep`] — the 1/2/4 concurrent-query sweeps of
//!   Figures 3–4 (one plan per level),
//! * [`SkewedJoin`] — the sweep join with a Zipf-skewed join key, built on
//!   [`eedc_tpch::ZipfKeys`] (Section 4.1's deferred third bottleneck),
//! * [`ProfiledQuery`] — a measured [`QueryProfile`], driving the Vertica
//!   SF-1000 scale-down studies of Figures 1–2.

use crate::model::SweepJoin;
use eedc_dbmsim::{ArrivalProcess, FaultModel, RampSegment};
use eedc_pstore::{JoinQuerySpec, JoinSkew, JoinStrategy, RunOptions};
use eedc_simkit::units::Seconds;
use eedc_tpch::{QueryId, QueryProfile, ScaleFactor, TpchTable};

/// The uniform workload descriptor every estimator consumes.
///
/// Each estimator reads the part it understands: the measured runtime
/// executes `query` under `strategy` (with `skew` wired into the cluster
/// options), the analytical model predicts from the `sweep` volumes, and the
/// behavioural law extrapolates `profile` (deriving one from the analytical
/// model at the reference configuration when the workload does not carry a
/// measured profile).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// Human-readable label, used in reports and JSON output.
    pub label: String,
    /// The closed-form join description: byte volumes, selectivities,
    /// hash-table sizing, and concurrency.
    pub sweep: SweepJoin,
    /// The predicate selectivities the measured runtime executes.
    pub query: JoinQuerySpec,
    /// How the join moves data.
    pub strategy: JoinStrategy,
    /// Optional Zipf skew on the join-key distribution.
    pub skew: Option<JoinSkew>,
    /// Optional measured work profile (node-local / repartition / broadcast
    /// split) for the behavioural estimator.
    pub profile: Option<QueryProfile>,
    /// Optional absolute anchor for the behavioural estimator: the response
    /// time of the reference configuration. For profile-less sweep plans,
    /// `None` derives the anchor from the analytical model at the reference
    /// configuration; for plans carrying a measured `profile`, `None` means
    /// a unit (1 s) anchor — predictions are then *relative*, exactly as
    /// Figures 1–2 plot them.
    pub reference_time: Option<Seconds>,
    /// Optional open-loop serving parameters, attached by
    /// [`ServingWorkload`] and read by the `Serving` estimator lens; every
    /// other estimator ignores them and evaluates the plan's single query.
    pub serving: Option<ServingParams>,
}

/// Open-loop serving parameters a [`ServingWorkload`] attaches to its plans:
/// the arrival law, the arrival window, the template mix, the pool
/// concurrency, and the admission queue bounds the `Serving` lens simulates.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingParams {
    /// The open-loop arrival law: Poisson at a mean rate, a recorded trace
    /// of arrival instants, or a piecewise-rate diurnal ramp.
    pub arrival: ArrivalProcess,
    /// Length of the arrival window.
    pub duration: Seconds,
    /// Zipf skew of the template mix (`0.0` is uniform).
    pub template_theta: f64,
    /// Admission-queue bound; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Queued queries waiting longer than this time out; `None` disables.
    pub max_wait: Option<Seconds>,
    /// RNG seed — same seed, same report, bit for bit.
    pub seed: u64,
    /// Queries each node pool serves simultaneously; beyond it they queue.
    /// Dedicated-slot pools are re-priced at this concurrency through the
    /// inner estimator (the [`ConcurrencySweep`] data), so an n-way pool's
    /// per-query profile comes from measured/analytical concurrency
    /// behaviour rather than a guess.
    pub pool_concurrency: usize,
    /// Divide each pool's single-query rate across in-flight queries
    /// (M/M/1-PS) instead of granting dedicated slots (M/M/c). Sharing
    /// itself models the contention, so profiles are then priced solo.
    pub processor_sharing: bool,
    /// Fault-injection and lifecycle model the `Serving` lens runs the
    /// stream under; `None` (or an inert model) keeps every pool up. When
    /// the model's scale policy carries no explicit migration cost, the
    /// lens derives one from the port-volume model of the design.
    pub faults: Option<FaultModel>,
    /// The query templates arrivals draw from, in Zipf-weight order (the
    /// templates themselves carry no serving parameters).
    pub templates: Vec<WorkloadPlan>,
}

impl ServingParams {
    /// Mean offered load over the arrival window (the configured rate for
    /// Poisson, the realized rate for traces and ramps).
    pub fn offered_qps(&self) -> f64 {
        self.arrival.mean_qps(self.duration)
    }
}

impl WorkloadPlan {
    /// A plan for a plain sweep join under the given strategy.
    pub fn sweep_join(sweep: SweepJoin, strategy: JoinStrategy) -> Self {
        let query = JoinQuerySpec::new(sweep.build_selectivity, sweep.probe_selectivity);
        let concurrency = if sweep.concurrency > 1 {
            format!(" x{}", sweep.concurrency)
        } else {
            String::new()
        };
        Self {
            label: format!("sweep {}{concurrency}", query.label()),
            sweep,
            query,
            strategy,
            skew: None,
            profile: None,
            reference_time: None,
            serving: None,
        }
    }

    /// The same plan under a different join strategy.
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The same plan with the measured runtime executing a different query
    /// spec (the analytical `sweep` volumes are left untouched — used when
    /// the sweep already carries *realized* selectivities derived from a
    /// loaded cluster).
    pub fn with_query(mut self, query: JoinQuerySpec) -> Self {
        self.query = query;
        self
    }
}

/// Something that can be evaluated by any [`crate::Estimator`]: a workload
/// description expanded into one or more uniform [`WorkloadPlan`]s.
///
/// The trait is object safe, so heterogeneous workload collections can be
/// swept through one [`crate::Experiment`].
pub trait Workload {
    /// Label of the workload as a whole.
    fn label(&self) -> String;

    /// The concrete plans to evaluate, in presentation order. Most workloads
    /// yield exactly one; sweeps yield one per swept point.
    fn plans(&self) -> Vec<WorkloadPlan>;
}

/// A plan is trivially a workload of itself.
impl Workload for WorkloadPlan {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        vec![self.clone()]
    }
}

/// The plain sweep join evaluates under the dual-shuffle repartitioning plan
/// (the paper's default execution method); use
/// [`Experiment::strategy`](crate::Experiment::strategy) or
/// [`WorkloadPlan::with_strategy`] for the other strategies.
impl Workload for SweepJoin {
    fn label(&self) -> String {
        WorkloadPlan::sweep_join(*self, JoinStrategy::DualShuffle).label
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        vec![WorkloadPlan::sweep_join(*self, JoinStrategy::DualShuffle)]
    }
}

/// The 1/2/4 concurrent-query sweeps of Figures 3 and 4 as a workload: one
/// plan per concurrency level, each running `level` identical copies of the
/// base sweep join over the shared interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencySweep {
    base: SweepJoin,
    levels: Vec<usize>,
}

impl ConcurrencySweep {
    /// Sweep the base join over the given concurrency levels.
    pub fn new(base: SweepJoin, levels: impl IntoIterator<Item = usize>) -> Self {
        Self {
            base,
            levels: levels.into_iter().collect(),
        }
    }

    /// The paper's 1/2/4 sweep.
    pub fn paper(base: SweepJoin) -> Self {
        Self::new(base, eedc_pstore::concurrency::PAPER_LEVELS)
    }

    /// The swept concurrency levels.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }
}

impl Workload for ConcurrencySweep {
    fn label(&self) -> String {
        format!("{} concurrency sweep", self.base.label())
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        self.levels
            .iter()
            .map(|&level| {
                WorkloadPlan::sweep_join(
                    self.base.with_concurrency(level.max(1)),
                    JoinStrategy::DualShuffle,
                )
            })
            .collect()
    }
}

/// The sweep join with a Zipf-skewed join-key distribution, built on
/// [`eedc_tpch::ZipfKeys`]: hash partitioning no longer splits work `1/n`,
/// so per-node utilization and energy unbalance toward the node holding the
/// hot partition (Section 4.1's deferred third bottleneck).
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedJoin {
    base: SweepJoin,
    skew: JoinSkew,
}

impl SkewedJoin {
    /// A skewed variant of the base join.
    pub fn new(base: SweepJoin, skew: JoinSkew) -> Self {
        Self { base, skew }
    }

    /// A skewed variant with the given Zipf exponent over the default key
    /// domain.
    pub fn zipf(base: SweepJoin, theta: f64) -> Self {
        Self::new(base, JoinSkew::zipf(theta))
    }

    /// The skew parameters.
    pub fn skew(&self) -> &JoinSkew {
        &self.skew
    }

    /// The theoretical load fraction of the hottest of `partitions` hash
    /// partitions under this skew (uniform is `1 / partitions`).
    pub fn hot_partition_fraction(&self, partitions: usize) -> f64 {
        self.skew
            .partition_weights(partitions)
            .into_iter()
            .fold(0.0, f64::max)
            .max(if partitions == 0 { 1.0 } else { 0.0 })
    }
}

impl Workload for SkewedJoin {
    fn label(&self) -> String {
        self.plans().remove(0).label
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        let mut plan = WorkloadPlan::sweep_join(self.base, JoinStrategy::DualShuffle);
        plan.label = format!("{} zipf(θ={})", plan.label, self.skew.theta);
        plan.skew = Some(self.skew);
        vec![plan]
    }
}

/// A measured query profile as a workload: the Section 3 studies, where an
/// off-the-shelf DBMS's per-query work split (node-local / repartition /
/// broadcast) is known and the question is how the query scales with the
/// cluster size.
///
/// The behavioural estimator consumes the profile directly; the measured and
/// analytical estimators reconstruct the equivalent sweep join from the
/// profile's selectivities and the projected TPC-H working sets at `scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledQuery {
    profile: QueryProfile,
    scale: ScaleFactor,
    reference_time: Seconds,
}

impl ProfiledQuery {
    /// A profiled query at the given scale, anchored at the reference
    /// configuration's measured response time.
    pub fn new(profile: QueryProfile, scale: ScaleFactor, reference_time: Seconds) -> Self {
        Self {
            profile,
            scale,
            reference_time,
        }
    }

    /// The Vertica SF-1000 study of Figures 1–2 for one of the paper's
    /// queries, with a unit anchor (all predictions are then relative to the
    /// eight-node reference, exactly as the figures plot them).
    pub fn vertica_sf1000(query: QueryId) -> Self {
        Self::new(
            QueryProfile::paper(query),
            ScaleFactor::SF1000,
            Seconds(1.0),
        )
    }

    /// The profile driving the workload.
    pub fn profile(&self) -> &QueryProfile {
        &self.profile
    }
}

impl Workload for ProfiledQuery {
    fn label(&self) -> String {
        format!("{}@{}", self.profile.query, self.scale)
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        let defaults = RunOptions::default();
        let sweep = SweepJoin {
            build_bytes: self.scale.projected_size(TpchTable::Orders),
            probe_bytes: self.scale.projected_size(TpchTable::Lineitem),
            build_selectivity: self.profile.build_selectivity,
            probe_selectivity: self.profile.probe_selectivity,
            hash_table_expansion: defaults.hash_table_expansion,
            hash_table_headroom: defaults.hash_table_headroom,
            in_memory: defaults.in_memory,
            concurrency: 1,
        };
        vec![WorkloadPlan {
            label: self.label(),
            sweep,
            query: JoinQuerySpec::new(
                self.profile.build_selectivity,
                self.profile.probe_selectivity,
            ),
            strategy: JoinStrategy::DualShuffle,
            skew: None,
            profile: Some(self.profile.clone()),
            reference_time: Some(self.reference_time),
            serving: None,
        }]
    }
}

/// A long-lived *service* as a workload: open-loop Poisson arrivals at one
/// or more offered QPS levels, drawing query templates from an inner
/// workload's plans under a Zipf mix, with a bounded admission queue —
/// one [`WorkloadPlan`] per QPS level, each carrying [`ServingParams`] for
/// the `Serving` estimator lens. Sweeping the levels across designs yields
/// the throughput–energy Pareto curves the paper's question ultimately asks
/// about.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingWorkload {
    base_label: String,
    templates: Vec<WorkloadPlan>,
    qps_levels: Vec<f64>,
    arrival_override: Option<ArrivalProcess>,
    duration: Seconds,
    template_theta: f64,
    queue_capacity: usize,
    max_wait: Option<Seconds>,
    seed: u64,
    pool_concurrency: usize,
    processor_sharing: bool,
    faults: Option<FaultModel>,
}

impl ServingWorkload {
    /// Serve the inner workload's plans as query templates at one offered
    /// QPS over the given arrival window, with a deterministic seed.
    pub fn new(templates: &dyn Workload, qps: f64, duration: Seconds, seed: u64) -> Self {
        Self {
            base_label: templates.label(),
            templates: templates
                .plans()
                .into_iter()
                .map(|mut plan| {
                    // Templates are single queries; nested serving
                    // parameters would recurse.
                    plan.serving = None;
                    plan
                })
                .collect(),
            qps_levels: vec![qps],
            arrival_override: None,
            duration,
            template_theta: 0.0,
            queue_capacity: 1024,
            max_wait: None,
            seed,
            pool_concurrency: 1,
            processor_sharing: false,
            faults: None,
        }
    }

    /// Serve the stream under a fault-injection and lifecycle model:
    /// hazard and scripted failures, kill/recovery of in-flight queries,
    /// and optional queue-depth elastic scaling. The `Serving` lens then
    /// reports availability, kill/re-admission counts, and lifecycle
    /// overhead next to the usual latency and energy figures.
    pub fn with_faults(mut self, model: FaultModel) -> Self {
        self.faults = Some(model);
        self
    }

    /// Replace the single QPS level with a sweep (one plan per level).
    pub fn qps_sweep(mut self, levels: impl IntoIterator<Item = f64>) -> Self {
        self.qps_levels = levels.into_iter().collect();
        self
    }

    /// Replay recorded arrival instants instead of drawing Poisson gaps
    /// (replaces any QPS sweep: a trace fixes the load).
    pub fn trace_arrivals(mut self, times: impl IntoIterator<Item = Seconds>) -> Self {
        self.arrival_override = Some(ArrivalProcess::Trace(times.into_iter().collect()));
        self
    }

    /// Drive arrivals with a piecewise-constant-rate diurnal ramp given as
    /// `(segment duration, qps)` pairs (replaces any QPS sweep).
    pub fn diurnal_ramp(mut self, segments: impl IntoIterator<Item = (Seconds, f64)>) -> Self {
        self.arrival_override = Some(ArrivalProcess::Ramp(
            segments
                .into_iter()
                .map(|(duration, qps)| RampSegment { duration, qps })
                .collect(),
        ));
        self
    }

    /// Let each node pool serve `limit` queries at once on dedicated slots;
    /// the `Serving` lens re-prices its per-query profiles at this
    /// concurrency through the inner estimator.
    pub fn pool_concurrency(mut self, limit: usize) -> Self {
        self.pool_concurrency = limit;
        self
    }

    /// Divide each pool's rate across in-flight queries (processor sharing)
    /// instead of granting dedicated slots.
    pub fn processor_sharing(mut self) -> Self {
        self.processor_sharing = true;
        self
    }

    /// Set the Zipf skew of the template mix.
    pub fn template_theta(mut self, theta: f64) -> Self {
        self.template_theta = theta;
        self
    }

    /// Set the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enable queue-wait timeouts.
    pub fn max_wait(mut self, wait: Seconds) -> Self {
        self.max_wait = Some(wait);
        self
    }

    /// The swept offered-QPS levels.
    pub fn levels(&self) -> &[f64] {
        &self.qps_levels
    }

    /// The query templates arrivals draw from.
    pub fn templates(&self) -> &[WorkloadPlan] {
        &self.templates
    }
}

impl Workload for ServingWorkload {
    fn label(&self) -> String {
        format!("serving {}", self.base_label)
    }

    fn plans(&self) -> Vec<WorkloadPlan> {
        if self.templates.is_empty() {
            // An empty template set expands to no plans; Experiment::run
            // reports the absence rather than panicking here.
            return Vec::new();
        }
        let params = |arrival: ArrivalProcess| ServingParams {
            arrival,
            duration: self.duration,
            template_theta: self.template_theta,
            queue_capacity: self.queue_capacity,
            max_wait: self.max_wait,
            seed: self.seed,
            pool_concurrency: self.pool_concurrency,
            processor_sharing: self.processor_sharing,
            faults: self.faults.clone(),
            templates: self.templates.clone(),
        };
        // The plan's own sweep/query/strategy mirror the first template, so
        // non-serving estimators evaluate a meaningful single query instead
        // of failing.
        if let Some(arrival) = &self.arrival_override {
            // A trace or ramp fixes the load: one plan, labelled by kind.
            let mut plan = self.templates[0].clone();
            plan.label = format!("{} @{}", self.label(), arrival.kind());
            plan.serving = Some(params(arrival.clone()));
            return vec![plan];
        }
        self.qps_levels
            .iter()
            .map(|&qps| {
                let mut plan = self.templates[0].clone();
                plan.label = format!("{} @{qps}qps", self.label());
                plan.serving = Some(params(ArrivalProcess::Poisson { qps }));
                plan
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::units::Megabytes;

    fn base() -> SweepJoin {
        SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle())
    }

    #[test]
    fn sweep_join_yields_one_dual_shuffle_plan() {
        let plans = base().plans();
        assert_eq!(plans.len(), 1);
        let plan = &plans[0];
        assert_eq!(plan.strategy, JoinStrategy::DualShuffle);
        assert_eq!(plan.query, JoinQuerySpec::q3_dual_shuffle());
        assert!(plan.skew.is_none());
        assert!(plan.profile.is_none());
        assert!(plan.label.contains("O5%/L5%"), "{}", plan.label);
        // The plan is itself a single-plan workload.
        assert_eq!(plan.plans(), plans);
        assert_eq!(Workload::label(plan), plan.label);
    }

    #[test]
    fn plan_overrides_patch_strategy_and_query() {
        let plan = WorkloadPlan::sweep_join(base(), JoinStrategy::DualShuffle)
            .with_strategy(JoinStrategy::Broadcast)
            .with_query(JoinQuerySpec::new(0.01, 0.05));
        assert_eq!(plan.strategy, JoinStrategy::Broadcast);
        assert_eq!(plan.query.build_selectivity, 0.01);
        // The analytical volumes are untouched by the query override.
        assert_eq!(plan.sweep.build_selectivity, 0.05);
    }

    #[test]
    fn concurrency_sweep_expands_the_paper_levels() {
        let sweep = ConcurrencySweep::paper(base());
        assert_eq!(sweep.levels(), &[1, 2, 4]);
        let plans = sweep.plans();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].sweep.concurrency, 1);
        assert_eq!(plans[2].sweep.concurrency, 4);
        assert!(plans[2].label.contains("x4"), "{}", plans[2].label);
        assert!(Workload::label(&sweep).contains("concurrency sweep"));
        // Degenerate zero levels are clamped to 1.
        let clamped = ConcurrencySweep::new(base(), [0]);
        assert_eq!(clamped.plans()[0].sweep.concurrency, 1);
    }

    #[test]
    fn skewed_join_carries_its_skew_into_the_plan() {
        let skewed = SkewedJoin::zipf(base(), 1.0);
        let plans = skewed.plans();
        assert_eq!(plans.len(), 1);
        let skew = plans[0].skew.expect("plan carries the skew");
        assert_eq!(skew.theta, 1.0);
        assert!(plans[0].label.contains("zipf"), "{}", plans[0].label);
        assert!(Workload::label(&skewed).contains("zipf"));
        // The hot partition carries more than the uniform share.
        assert!(skewed.hot_partition_fraction(8) > 1.0 / 8.0);
        assert_eq!(skewed.hot_partition_fraction(0), 1.0);
    }

    #[test]
    fn serving_workload_expands_one_plan_per_qps_level() {
        let sweep = ConcurrencySweep::paper(base());
        let serving = ServingWorkload::new(&sweep, 0.5, Seconds(600.0), 7)
            .qps_sweep([0.25, 0.5, 1.0])
            .template_theta(1.0)
            .queue_capacity(32)
            .max_wait(Seconds(30.0));
        assert_eq!(serving.levels(), &[0.25, 0.5, 1.0]);
        assert_eq!(serving.templates().len(), 3);
        assert!(Workload::label(&serving).starts_with("serving"));
        let plans = serving.plans();
        assert_eq!(plans.len(), 3);
        for (plan, &qps) in plans.iter().zip(serving.levels()) {
            let params = plan.serving.as_ref().expect("serving params ride along");
            assert_eq!(params.arrival, ArrivalProcess::Poisson { qps });
            assert_eq!(params.offered_qps(), qps);
            assert_eq!(params.duration, Seconds(600.0));
            assert_eq!(params.template_theta, 1.0);
            assert_eq!(params.queue_capacity, 32);
            assert_eq!(params.max_wait, Some(Seconds(30.0)));
            assert_eq!(params.seed, 7);
            assert_eq!(params.pool_concurrency, 1, "dedicated single slot");
            assert!(!params.processor_sharing);
            assert_eq!(params.templates.len(), 3);
            assert!(
                params.templates.iter().all(|t| t.serving.is_none()),
                "templates must not nest serving parameters"
            );
            assert!(plan.label.contains("qps"), "{}", plan.label);
            // The plan mirrors the first template for non-serving lenses.
            assert_eq!(plan.sweep, params.templates[0].sweep);
        }
        // Ordinary workloads carry no serving parameters.
        assert!(base().plans()[0].serving.is_none());
    }

    #[test]
    fn serving_workload_carries_arrival_and_concurrency_options() {
        let sweep = ConcurrencySweep::paper(base());
        // A trace replaces the QPS sweep with one fixed-load plan.
        let traced = ServingWorkload::new(&sweep, 0.5, Seconds(10.0), 7)
            .qps_sweep([0.25, 0.5])
            .trace_arrivals([Seconds(1.0), Seconds(2.0), Seconds(4.0)])
            .pool_concurrency(4);
        let plans = traced.plans();
        assert_eq!(plans.len(), 1, "a trace fixes the load");
        let params = plans[0].serving.as_ref().unwrap();
        assert_eq!(
            params.arrival,
            ArrivalProcess::Trace(vec![Seconds(1.0), Seconds(2.0), Seconds(4.0)])
        );
        assert!((params.offered_qps() - 0.3).abs() < 1e-12);
        assert_eq!(params.pool_concurrency, 4);
        assert!(plans[0].label.ends_with("@trace"), "{}", plans[0].label);

        // A diurnal ramp builds segments from (duration, qps) pairs.
        let ramped = ServingWorkload::new(&sweep, 0.5, Seconds(300.0), 7)
            .diurnal_ramp([(Seconds(100.0), 0.1), (Seconds(200.0), 2.0)])
            .processor_sharing();
        let plans = ramped.plans();
        assert_eq!(plans.len(), 1);
        let params = plans[0].serving.as_ref().unwrap();
        assert_eq!(params.arrival.kind(), "ramp");
        assert!(params.processor_sharing);
        assert!((params.offered_qps() - 410.0 / 300.0).abs() < 1e-12);
        assert!(plans[0].label.ends_with("@ramp"), "{}", plans[0].label);
    }

    #[test]
    fn profiled_query_reconstructs_the_scaled_sweep() {
        let q12 = ProfiledQuery::vertica_sf1000(QueryId::Q12);
        let plans = q12.plans();
        assert_eq!(plans.len(), 1);
        let plan = &plans[0];
        assert_eq!(plan.label, "Q12@SF1000");
        let profile = plan.profile.as_ref().expect("profile rides along");
        assert_eq!(profile.query, QueryId::Q12);
        assert_eq!(plan.reference_time, Some(Seconds(1.0)));
        // SF-1000 projected working sets: 2.5x the Section 5.2 SF-400 sizes.
        assert!(plan.sweep.probe_bytes > Megabytes(100_000.0));
        assert!(
            (plan.sweep.probe_bytes.value() / plan.sweep.build_bytes.value() - 4.0).abs() < 1e-9
        );
        assert_eq!(plan.query.probe_selectivity, profile.probe_selectivity);
    }
}
