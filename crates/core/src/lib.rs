//! # eedc-core
//!
//! The analytical cluster design model of Section 5.4 and the design-space
//! advisor of Section 6 will live here: closed-form response-time and energy
//! predictions over `(b Beefy, w Wimpy)` cluster designs, validated against
//! the P-store runtime, plus the "most efficient design meeting a
//! performance target" selection rule.
//!
//! This crate is currently a skeleton: it carries the published model
//! [`params`] so the other layers can reference them, and the model itself
//! is tracked as an open item in `ROADMAP.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod params {
    //! Published parameters of the Section 5.4 model sweeps.
    //!
    //! The sweeps model a 700 GB ORDERS ⋈ 2.8 TB LINEITEM join; these
    //! working-set sizes are quoted directly by the paper rather than derived
    //! from a TPC-H scale factor, which is why they live here instead of in
    //! `eedc_tpch::scale`.

    use eedc_simkit::units::Megabytes;

    /// Working set of the ORDERS input to the Section 5.4 model sweeps
    /// (700 GB).
    pub const SWEEP_ORDERS_WORKING_SET: Megabytes = Megabytes(700_000.0);

    /// Working set of the LINEITEM input to the Section 5.4 model sweeps
    /// (2.8 TB).
    pub const SWEEP_LINEITEM_WORKING_SET: Megabytes = Megabytes(2_800_000.0);
}

#[cfg(test)]
mod tests {
    use super::params::*;

    #[test]
    fn sweep_working_sets_match_section_5_4() {
        assert_eq!(SWEEP_ORDERS_WORKING_SET.as_gigabytes(), 700.0);
        assert_eq!(SWEEP_LINEITEM_WORKING_SET.as_gigabytes(), 2800.0);
        // LINEITEM is exactly 4x ORDERS, mirroring the TPC-H fan-out.
        assert_eq!(
            SWEEP_LINEITEM_WORKING_SET.value() / SWEEP_ORDERS_WORKING_SET.value(),
            4.0
        );
    }
}
