//! # eedc-core
//!
//! The experiment API unifying the paper's five evaluation lenses, plus the
//! analytical cluster design model of Section 5.4 and the design-space
//! advisor of Section 6.
//!
//! * [`workload`] — the [`Workload`] trait and its implementations
//!   ([`SweepJoin`], [`ConcurrencySweep`], Zipf-skewed [`SkewedJoin`],
//!   profile-driven [`ProfiledQuery`], and the open-loop
//!   [`ServingWorkload`] wrapper): *what* is evaluated.
//! * [`experiment`] — the [`Estimator`] trait and its five lenses
//!   ([`Measured`] P-store runs, [`Analytical`] closed-form predictions,
//!   [`Behavioural`] first-order scaling, [`Traced`] utilization-trace
//!   replay under engine behaviours, [`Serving`] discrete-event query
//!   streams with latency percentiles and energy-per-query), the
//!   builder-style [`Experiment`] runner, and the uniform [`RunRecord`]
//!   every lens yields: *how* it is evaluated.
//! * [`model`] — closed-form per-phase response-time and energy predictions
//!   for any `(b Beefy, w Wimpy)` cluster design running the sweep join
//!   (700 GB ORDERS ⋈ 2.8 TB LINEITEM in the paper's sweeps): scan rates,
//!   per-node port bandwidth, broadcast versus shuffle volumes, and the
//!   homogeneous/heterogeneous mode selection shared with the P-store
//!   runtime via [`eedc_pstore::select_execution_mode`].
//! * [`advisor`] — enumerates the design grid under *any* estimator,
//!   normalizes the records against the all-Beefy reference, and returns
//!   the cheapest design meeting a performance floor.
//! * [`json`] — the hand-rolled JSON writer **and reader** that land
//!   [`RunRecord`] series on disk for the figures pipeline and read them
//!   back for baseline comparisons.
//! * [`params`] — the published working-set sizes of the Section 5.4 sweeps.
//!
//! The measured and analytical lenses are validated against each other in
//! `tests/model_validation.rs`: homogeneous scale-downs and heterogeneous
//! designs must agree within 15% through the experiment API, and the
//! advisor's pick must match across the two series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod error;
pub mod experiment;
pub mod json;
pub mod model;
pub mod workload;

pub use advisor::{DesignAdvisor, DesignSpace, DesignSpaceReport, Recommendation};
pub use error::CoreError;
pub use experiment::{
    Analytical, Behavioural, Estimator, Experiment, ExperimentReport, FaultStats, Measured,
    PhaseRecord, RunRecord, RunSeries, Serving, ServingStats, Traced,
};
pub use json::JsonValue;
pub use model::{AnalyticalModel, ModelPrediction, PhasePrediction, SweepJoin};
pub use workload::{
    ConcurrencySweep, ProfiledQuery, ServingParams, ServingWorkload, SkewedJoin, Workload,
    WorkloadPlan,
};
// The serving arrival law and the fault/lifecycle model ride inside
// `ServingParams`; re-export them so callers can build trace/ramp/churn
// workloads without naming `eedc_dbmsim`.
pub use eedc_dbmsim::{
    ArrivalProcess, FaultModel, FaultOutage, RampSegment, RecoveryPolicy, ScalePolicy,
    TransitionCost,
};

pub mod params {
    //! Published parameters of the Section 5.4 model sweeps.
    //!
    //! The sweeps model a 700 GB ORDERS ⋈ 2.8 TB LINEITEM join; these
    //! working-set sizes are quoted directly by the paper rather than derived
    //! from a TPC-H scale factor, which is why they live here instead of in
    //! `eedc_tpch::scale`.

    use eedc_simkit::units::Megabytes;

    /// Working set of the ORDERS input to the Section 5.4 model sweeps
    /// (700 GB).
    pub const SWEEP_ORDERS_WORKING_SET: Megabytes = Megabytes(700_000.0);

    /// Working set of the LINEITEM input to the Section 5.4 model sweeps
    /// (2.8 TB).
    pub const SWEEP_LINEITEM_WORKING_SET: Megabytes = Megabytes(2_800_000.0);
}

#[cfg(test)]
mod tests {
    use super::params::*;

    #[test]
    fn sweep_working_sets_match_section_5_4() {
        assert_eq!(SWEEP_ORDERS_WORKING_SET.as_gigabytes(), 700.0);
        assert_eq!(SWEEP_LINEITEM_WORKING_SET.as_gigabytes(), 2800.0);
        // LINEITEM is exactly 4x ORDERS, mirroring the TPC-H fan-out.
        assert_eq!(
            SWEEP_LINEITEM_WORKING_SET.value() / SWEEP_ORDERS_WORKING_SET.value(),
            4.0
        );
    }
}
